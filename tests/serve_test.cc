// Tests for the live introspection stack: the HTTP server, the LiveHub
// rendezvous (load-skew EWMAs, deadlock ring, phases), the preemption
// lineage tracker (unit-level and against the paper's Figure 1/2
// schedules), and the introspection endpoints served over a real socket
// while a sharded run is in flight.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/forensics.h"
#include "obs/lineage.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/serve/http_server.h"
#include "obs/serve/hub.h"
#include "obs/serve/introspection.h"
#include "par/sharded_driver.h"
#include "sim/scenario.h"

namespace pardb {
namespace {

using core::VictimPolicyKind;
using obs::HttpRequest;
using obs::HttpResponse;
using obs::HttpServer;
using obs::LineageTracker;
using obs::LiveHub;
using obs::ManualClock;
using obs::MetricsRegistry;
using obs::ParseQueryString;
using obs::RunPhase;
using sim::BuildFigure1;
using sim::RunFigure2MutualPreemption;

core::EngineOptions FigOptions(VictimPolicyKind policy) {
  core::EngineOptions opt;
  opt.victim_policy = policy;
  return opt;
}

// ---------------------------------------------------------------------------
// Raw-socket HTTP client: the tests exercise the real wire protocol, not
// the handler functions in isolation.
// ---------------------------------------------------------------------------

struct HttpReply {
  int status = 0;
  std::string content_type;
  std::string body;
  bool ok = false;
};

HttpReply HttpFetch(std::uint16_t port, const std::string& target,
                    const std::string& method = "GET") {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  const std::string request =
      method + " " + target + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t eol = raw.find("\r\n");
  if (eol == std::string::npos) return reply;
  // "HTTP/1.0 200 OK"
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > eol) return reply;
  reply.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return reply;
  const std::string headers = raw.substr(0, header_end);
  const std::size_t ct = headers.find("Content-Type: ");
  if (ct != std::string::npos) {
    const std::size_t ct_end = headers.find("\r\n", ct);
    reply.content_type =
        headers.substr(ct + 14, ct_end == std::string::npos
                                    ? std::string::npos
                                    : ct_end - ct - 14);
  }
  reply.body = raw.substr(header_end + 4);
  reply.ok = true;
  return reply;
}

// ---------------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------------

TEST(ParseQueryStringTest, DecodesPairsEscapesAndBareKeys) {
  auto q = ParseQueryString("format=dot&x=a%2Fb&plus=1+2&flag");
  EXPECT_EQ(q.at("format"), "dot");
  EXPECT_EQ(q.at("x"), "a/b");
  EXPECT_EQ(q.at("plus"), "1 2");
  EXPECT_EQ(q.at("flag"), "");
  EXPECT_TRUE(ParseQueryString("").empty());
}

TEST(HttpServerTest, ServesRoutesOverRealSocket) {
  HttpServer server;
  server.Route("/ping", [](const HttpRequest&) {
    return HttpResponse::Text("pong\n");
  });
  server.Route("/echo", [](const HttpRequest& req) {
    return HttpResponse::Json("{\"format\":\"" + req.QueryOr("format", "?") +
                              "\"}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  auto ping = HttpFetch(server.port(), "/ping");
  ASSERT_TRUE(ping.ok);
  EXPECT_EQ(ping.status, 200);
  EXPECT_EQ(ping.body, "pong\n");

  auto echo = HttpFetch(server.port(), "/echo?format=dot");
  ASSERT_TRUE(echo.ok);
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.content_type, "application/json");
  EXPECT_EQ(echo.body, "{\"format\":\"dot\"}");

  auto missing = HttpFetch(server.port(), "/nope");
  ASSERT_TRUE(missing.ok);
  EXPECT_EQ(missing.status, 404);

  auto post = HttpFetch(server.port(), "/ping", "POST");
  ASSERT_TRUE(post.ok);
  EXPECT_EQ(post.status, 405);

  EXPECT_EQ(server.requests_served(), 4u);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

// A client that disconnects while the server is still writing a large
// response must not take the server down (historically the write raced
// the close into SIGPIPE); the next request must still be served.
TEST(HttpServerTest, SurvivesClientDisconnectMidResponse) {
  // Large enough that the kernel cannot buffer the whole body, so the
  // server is still send()ing when the client closes.
  const std::string big(8 * 1024 * 1024, 'x');
  HttpServer server;
  server.Route("/big", [&big](const HttpRequest&) {
    return HttpResponse::Text(big);
  });
  server.Route("/ping", [](const HttpRequest&) {
    return HttpResponse::Text("pong\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /big HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  // Read just the first chunk, then hang up with the rest in flight.
  char buf[1024];
  ASSERT_GT(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);

  auto ping = HttpFetch(server.port(), "/ping");
  ASSERT_TRUE(ping.ok);
  EXPECT_EQ(ping.status, 200);
  EXPECT_EQ(ping.body, "pong\n");
  server.Stop();
}

// ---------------------------------------------------------------------------
// LiveHub: load skew, uptime, phases, deadlock ring
// ---------------------------------------------------------------------------

TEST(LiveHubTest, LoadSkewIsExactlyMaxOverMeanOnFirstSamples) {
  // The first sample initializes each shard's EWMA verbatim, so with one
  // sample per shard the gauge is exactly max/mean of the hand-built
  // timings: mean(800, 1000, 1200) = 1000, max = 1200, skew = 1.2.
  LiveHub hub;
  hub.RecordShardStep(0, 800);
  hub.RecordShardStep(1, 1000);
  hub.RecordShardStep(2, 1200);
  EXPECT_EQ(hub.ShardStepEwmaNs(0), 800u);
  EXPECT_EQ(hub.ShardStepEwmaNs(1), 1000u);
  EXPECT_EQ(hub.ShardStepEwmaNs(2), 1200u);
  EXPECT_DOUBLE_EQ(hub.LoadSkew(), 1.2);

  auto merged = hub.MergedMetrics();
  const auto* skew = merged.Find(obs::kShardLoadSkew);
  ASSERT_NE(skew, nullptr);
  EXPECT_EQ(skew->gauge, std::llround(1.2 * 1000.0));
  const auto* ewma1 =
      merged.Find(obs::kShardStepEwmaNs, {{obs::kShardLabel, "1"}});
  ASSERT_NE(ewma1, nullptr);
  EXPECT_EQ(ewma1->gauge, 1000);
}

TEST(LiveHubTest, BalancedShardsReportSkewOne) {
  LiveHub hub;
  hub.RecordShardStep(0, 5000);
  hub.RecordShardStep(1, 5000);
  EXPECT_DOUBLE_EQ(hub.LoadSkew(), 1.0);
  EXPECT_DOUBLE_EQ(LiveHub().LoadSkew(), 0.0);  // nothing reported yet
}

TEST(LiveHubTest, EwmaBlendsWithAlphaOneEighth) {
  LiveHub hub;
  hub.RecordShardStep(0, 800);
  hub.RecordShardStep(0, 1600);  // 800 + (1600 - 800) / 8 = 900
  EXPECT_EQ(hub.ShardStepEwmaNs(0), 900u);
  hub.RecordShardStep(0, 100);  // 900 + (100 - 900) / 8 = 800
  EXPECT_EQ(hub.ShardStepEwmaNs(0), 800u);
}

TEST(LiveHubTest, UptimeAndPhaseUseInjectedClock) {
  ManualClock clock(1'000'000'000);
  LiveHub hub(&clock);
  EXPECT_DOUBLE_EQ(hub.UptimeSeconds(), 0.0);
  clock.AdvanceNanos(2'500'000'000);
  EXPECT_DOUBLE_EQ(hub.UptimeSeconds(), 2.5);

  EXPECT_EQ(hub.phase(), RunPhase::kIdle);
  hub.SetPhase(RunPhase::kRunning);
  EXPECT_EQ(hub.phase(), RunPhase::kRunning);
  EXPECT_EQ(obs::RunPhaseName(hub.phase()), "running");
}

TEST(LiveHubTest, DeadlockRingKeepsNewestDumps) {
  LiveHub hub(nullptr, /*max_deadlocks=*/2);
  obs::DeadlockDumpSink* sink = hub.MakeDeadlockSink(3);
  for (std::uint64_t step : {10u, 20u, 30u}) {
    obs::DeadlockDump dump;
    dump.step = step;
    dump.requester = TxnId(1);
    sink->OnDeadlock(dump);
  }
  EXPECT_EQ(hub.deadlocks_seen(), 3u);
  auto ring = hub.RecentDeadlocks();
  ASSERT_EQ(ring.size(), 2u);  // oldest evicted
  EXPECT_EQ(ring[0].dump.step, 20u);
  EXPECT_EQ(ring[1].dump.step, 30u);
  EXPECT_EQ(ring[1].shard, 3u);
}

TEST(LiveHubTest, OwnedRegistryOutlivesTheRunsLocals) {
  LiveHub hub;
  MetricsRegistry* reg = hub.AddOwnedRegistry(std::make_unique<MetricsRegistry>());
  ASSERT_NE(reg, nullptr);
  reg->GetCounter("pardb_test_total", {})->Inc(7);
  const auto merged = hub.MergedMetrics();
  const auto* m = merged.Find("pardb_test_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->counter, 7u);
}

TEST(LiveHubTest, JournalDigestsReplaceByShardAndSortByShard) {
  LiveHub hub;
  auto digest = [](std::uint32_t shard, std::uint64_t records) {
    obs::JournalDigest d;
    d.shard = shard;
    d.records = records;
    return d;
  };
  const std::uint64_t before = hub.snapshot_version();
  hub.PublishJournal(digest(1, 10));
  hub.PublishJournal(digest(0, 20));
  hub.PublishJournal(digest(1, 30));  // re-publish replaces, never appends
  auto all = hub.JournalDigests();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].shard, 0u);
  EXPECT_EQ(all[0].records, 20u);
  EXPECT_EQ(all[1].shard, 1u);
  EXPECT_EQ(all[1].records, 30u);
  EXPECT_GT(hub.snapshot_version(), before);  // SSE pollers wake up
}

TEST(LiveHubTest, RunInfoRoundTripsForHealthz) {
  LiveHub hub;
  obs::RunInfo info;
  info.build_id = "pardb test-build";
  info.seed = 42;
  info.shards = 4;
  info.scheduler = "timeslice";
  info.mode = "parallel";
  hub.SetRunInfo(info);
  const obs::RunInfo got = hub.GetRunInfo();
  EXPECT_EQ(got.build_id, "pardb test-build");
  EXPECT_EQ(got.seed, 42u);
  EXPECT_EQ(got.shards, 4u);
  EXPECT_EQ(got.scheduler, "timeslice");
  EXPECT_EQ(got.mode, "parallel");
}

// ---------------------------------------------------------------------------
// LineageTracker
// ---------------------------------------------------------------------------

TEST(LineageTrackerTest, ChainDepthHandsAggressorHistoryOn) {
  // A preempts B, B preempts A, A preempts B again: the Figure 2
  // alternation. Each victim inherits max(victim, aggressor) + 1, so the
  // depth grows without bound exactly like the paper's mutual preemption.
  LineageTracker lineage;
  const TxnId a(1), b(2);
  lineage.OnPreemption(10, b, a, 0, 4);
  EXPECT_EQ(lineage.ChainLenOf(b), 1u);
  lineage.OnPreemption(20, a, b, 0, 5);
  EXPECT_EQ(lineage.ChainLenOf(a), 2u);
  lineage.OnPreemption(30, b, a, 0, 4);
  EXPECT_EQ(lineage.ChainLenOf(b), 3u);
  EXPECT_EQ(lineage.max_chain_len(), 3u);
  EXPECT_EQ(lineage.total_events(), 3u);

  const auto* events = lineage.EventsOf(b);
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ(events->back().step, 30u);
  EXPECT_EQ(events->back().aggressor, a);
  EXPECT_EQ(events->back().chain_len, 3u);
}

TEST(LineageTrackerTest, CommitRetiresTheRecord) {
  LineageTracker lineage;
  const TxnId a(1), b(2);
  lineage.OnPreemption(1, b, a, 0, 2);
  ASSERT_EQ(lineage.ChainLenOf(b), 1u);
  lineage.OnCommit(b);
  EXPECT_EQ(lineage.ChainLenOf(b), 0u);
  EXPECT_EQ(lineage.EventsOf(b), nullptr);
  EXPECT_EQ(lineage.max_chain_len(), 1u);  // high-water survives retirement
}

TEST(LineageTrackerTest, AttachedMetricsMirrorTheTracker) {
  MetricsRegistry registry;
  LineageTracker lineage;
  lineage.AttachMetrics(&registry, {{obs::kShardLabel, "0"}});
  const TxnId a(1), b(2);
  lineage.OnPreemption(1, b, a, 0, 2);
  lineage.OnPreemption(2, a, b, 0, 3);
  lineage.OnOmegaIntervention();

  auto snap = registry.Snapshot();
  const obs::LabelSet labels{{obs::kShardLabel, "0"}};
  EXPECT_EQ(snap.Find(obs::kPreemptionChainLen, labels)->gauge, 2);
  EXPECT_EQ(snap.Find(obs::kOmegaInterventionsTotal, labels)->counter, 1u);
  EXPECT_EQ(snap.Find(obs::kLineageEventsTotal, labels)->counter, 2u);
}

// ---------------------------------------------------------------------------
// Lineage against the paper's schedules (engine integration)
// ---------------------------------------------------------------------------

TEST(LineageEngineTest, OmegaInterventionFiresWhenOrderedOverridesMinCost) {
  // Figure 1 under the ordered policy: pure min-cost would sacrifice the
  // requester T2 (cost 4), but Theorem 2 restricts victims to later
  // entries and picks T4 (cost 5) — one recorded ω-intervention, and T4's
  // chain starts at depth 1.
  auto fig = BuildFigure1(FigOptions(VictimPolicyKind::kMinCostOrdered));
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  LineageTracker lineage;
  fig->runner->engine().set_lineage(&lineage);
  ASSERT_TRUE(fig->TriggerDeadlock().ok());

  EXPECT_EQ(lineage.omega_interventions(), 1u);
  EXPECT_EQ(lineage.total_events(), 1u);
  EXPECT_EQ(lineage.ChainLenOf(fig->t4), 1u);
  const auto* events = lineage.EventsOf(fig->t4);
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->front().aggressor, fig->t2);
  EXPECT_EQ(events->front().cost, 5u);
}

TEST(LineageEngineTest, MinCostSelfRollbackRecordsHolderAsAggressor) {
  // Under unconstrained min-cost the victim is T2 itself. A self-rollback
  // still opens a chain (Figure 2 is built from them); the aggressor is
  // the holder T2 was waiting on — T4, which holds e. No ω-intervention
  // is possible under this policy.
  auto fig = BuildFigure1(FigOptions(VictimPolicyKind::kMinCost));
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  LineageTracker lineage;
  fig->runner->engine().set_lineage(&lineage);
  ASSERT_TRUE(fig->TriggerDeadlock().ok());
  EXPECT_EQ(lineage.omega_interventions(), 0u);
  EXPECT_EQ(lineage.ChainLenOf(fig->t2), 1u);
  const auto* events = lineage.EventsOf(fig->t2);
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->front().aggressor, fig->t4);
  EXPECT_EQ(events->front().cost, 4u);
}

TEST(LineageEngineTest, Figure2ChainGrowsUnderMinCostAndStaysBoundedOrdered) {
  // The live signal behind pardb_preemption_chain_len: the min-cost
  // alternation preempts T2 and T3 in turn, so the chain depth climbs with
  // every round (2 deadlocks per round). The ordered policy resolves the
  // first deadlock against T4 and the whole scenario commits at depth 1.
  LineageTracker min_cost;
  auto out = RunFigure2MutualPreemption(FigOptions(VictimPolicyKind::kMinCost),
                                        /*rounds=*/4, &min_cost);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->pattern_sustained);
  // 4 sustained rounds = 8 alternating self-rollbacks of {T2, T3}; each
  // inherits max(own, aggressor's) + 1, so the depth after 2k deadlocks
  // is k + 1: T2 climbs 1, 2, 3, 4 and T3 climbs 2, 3, 4, 5.
  EXPECT_GE(min_cost.max_chain_len(), 5u);
  EXPECT_GE(min_cost.total_events(), 8u);
  EXPECT_EQ(min_cost.omega_interventions(), 0u);

  LineageTracker ordered;
  auto fixed = RunFigure2MutualPreemption(
      FigOptions(VictimPolicyKind::kMinCostOrdered), /*rounds=*/4, &ordered);
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  EXPECT_TRUE(fixed->all_committed);
  EXPECT_EQ(ordered.max_chain_len(), 1u);
  EXPECT_GE(ordered.omega_interventions(), 1u);
  EXPECT_LT(ordered.max_chain_len(), min_cost.max_chain_len());
}

// ---------------------------------------------------------------------------
// End-to-end: introspection endpoints over a live sharded run
// ---------------------------------------------------------------------------

par::ShardedOptions ContestedShardedOptions(LiveHub* hub) {
  par::ShardedOptions opt;
  opt.num_shards = 2;
  opt.workload.num_entities = 16;  // small universe: plenty of deadlocks
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.concurrency = 12;
  opt.total_txns = 300;
  opt.seed = 7;
  opt.hub = hub;
  opt.hub_snapshot_period = 64;
  return opt;
}

TEST(ServeIntegrationTest, EndpointsServeWhileShardedRunIsInFlight) {
  LiveHub hub;
  HttpServer server;
  obs::InstallIntrospectionRoutes(&server, &hub);
  ASSERT_TRUE(server.Start(0).ok());
  const std::uint16_t port = server.port();

  // Scrape every endpoint from a client thread for the whole duration of
  // the run — the TSan target: server thread reading the hub and the
  // registries while both shard threads write them.
  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const char* target :
           {"/metrics", "/healthz", "/debug/waits-for",
            "/debug/waits-for?format=dot", "/debug/deadlocks",
            "/debug/slowest?k=2", "/debug/txn?id=1"}) {
        auto reply = HttpFetch(port, target);
        if (reply.ok && reply.status == 200) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  auto report = par::RunSharded(ContestedShardedOptions(&hub));
  done.store(true, std::memory_order_release);
  scraper.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->serializable);
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(hub.phase(), RunPhase::kDone);

  // Theorem 1 on every published snapshot: under continuous detection a
  // step-boundary waits-for graph is acyclic, and with exclusive locks
  // only (shared_fraction = 0) it is a forest.
  auto snaps = hub.Snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  for (const auto& snap : snaps) {
    EXPECT_TRUE(snap.acyclic) << "shard " << snap.shard;
    EXPECT_TRUE(snap.forest) << "shard " << snap.shard;
  }

  // The run is done but the hub owns the registries: /metrics still serves
  // final values, including every introspection-specific series.
  auto metrics = HttpFetch(port, "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find(obs::kShardLoadSkew), std::string::npos);
  EXPECT_NE(metrics.body.find(obs::kShardStepEwmaNs), std::string::npos);
  EXPECT_NE(metrics.body.find(obs::kPreemptionChainLen), std::string::npos);
  EXPECT_NE(metrics.body.find(obs::kOmegaInterventionsTotal),
            std::string::npos);
  EXPECT_NE(metrics.body.find(obs::kTraceDroppedTotal), std::string::npos);
  // The ring buffer never filled: no trace sink was even attached.
  EXPECT_NE(metrics.body.find(std::string(obs::kTraceDroppedTotal) +
                              "{shard=\"0\"} 0"),
            std::string::npos);

  auto health = HttpFetch(port, "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"phase\":\"done\""), std::string::npos);
  // Run metadata rides on the JSON body (no RunInfo was set here, so the
  // string fields fall back to "unknown" but the keys must be present);
  // ?plain=1 keeps the one-word liveness probe for dumb smoke scripts.
  EXPECT_NE(health.body.find("\"build_id\":"), std::string::npos);
  EXPECT_NE(health.body.find("\"seed\":"), std::string::npos);
  EXPECT_NE(health.body.find("\"shard_count\":"), std::string::npos);
  EXPECT_NE(health.body.find("\"scheduler\":"), std::string::npos);
  EXPECT_NE(health.body.find("\"uptime_seconds\":"), std::string::npos);
  auto plain = HttpFetch(port, "/healthz?plain=1");
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(plain.status, 200);
  EXPECT_EQ(plain.body, "ok\n");

  // D14: both shards published journal digests; the tail endpoint serves
  // the all-shards array, a per-shard digest, and clean errors.
  auto journal_all = HttpFetch(port, "/debug/journal");
  ASSERT_TRUE(journal_all.ok);
  EXPECT_EQ(journal_all.status, 200);
  EXPECT_NE(journal_all.body.find("\"chain\":\"0x"), std::string::npos);
  auto journal0 = HttpFetch(port, "/debug/journal?shard=0");
  ASSERT_TRUE(journal0.ok);
  EXPECT_EQ(journal0.status, 200);
  EXPECT_NE(journal0.body.find("\"shard\":0"), std::string::npos);
  EXPECT_NE(journal0.body.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(journal0.body.find("\"stamps\":["), std::string::npos);
  auto journal_bad = HttpFetch(port, "/debug/journal?shard=zz");
  ASSERT_TRUE(journal_bad.ok);
  EXPECT_EQ(journal_bad.status, 400);
  auto journal_missing = HttpFetch(port, "/debug/journal?shard=99");
  ASSERT_TRUE(journal_missing.ok);
  EXPECT_EQ(journal_missing.status, 404);

  // The journal series are on the scrape, and no journal ring evicted.
  EXPECT_NE(metrics.body.find(std::string(obs::kJournalRecordsTotal) +
                              "{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find(std::string(obs::kJournalDroppedTotal) +
                              "{shard=\"0\"} 0"),
            std::string::npos);

  auto waits = HttpFetch(port, "/debug/waits-for");
  ASSERT_TRUE(waits.ok);
  EXPECT_EQ(waits.status, 200);
  EXPECT_NE(waits.body.find("\"shards\""), std::string::npos);
  auto dot = HttpFetch(port, "/debug/waits-for?format=dot");
  ASSERT_TRUE(dot.ok);
  EXPECT_EQ(dot.status, 200);
  EXPECT_NE(dot.body.find("digraph"), std::string::npos);
  auto bad = HttpFetch(port, "/debug/waits-for?format=gif");
  ASSERT_TRUE(bad.ok);
  EXPECT_EQ(bad.status, 400);

  auto deadlocks = HttpFetch(port, "/debug/deadlocks");
  ASSERT_TRUE(deadlocks.ok);
  EXPECT_EQ(deadlocks.status, 200);
  EXPECT_GT(hub.deadlocks_seen(), 0u);
  EXPECT_NE(deadlocks.body.find("\"victims\""), std::string::npos);

  // D13 lifecycle endpoints: both shards published digests, so the
  // slowest ranking is populated and ordered, and a point lookup returns
  // per-shard ledger context.
  auto slowest = HttpFetch(port, "/debug/slowest?k=3");
  ASSERT_TRUE(slowest.ok);
  EXPECT_EQ(slowest.status, 200);
  EXPECT_NE(slowest.body.find("\"k\":3"), std::string::npos);
  EXPECT_NE(slowest.body.find("\"e2e_steps\":"), std::string::npos);
  auto bad_k = HttpFetch(port, "/debug/slowest?k=abc");
  ASSERT_TRUE(bad_k.ok);
  EXPECT_EQ(bad_k.status, 400);

  auto txn = HttpFetch(port, "/debug/txn?id=0");
  ASSERT_TRUE(txn.ok);
  EXPECT_EQ(txn.status, 200);
  EXPECT_NE(txn.body.find("\"shards\":[{\"shard\":0"), std::string::npos);
  auto no_id = HttpFetch(port, "/debug/txn");
  ASSERT_TRUE(no_id.ok);
  EXPECT_EQ(no_id.status, 400);

  // The lifecycle series are on the scrape, and no timeline ring evicted.
  EXPECT_NE(metrics.body.find(obs::kWastedStepsTotal), std::string::npos);
  EXPECT_NE(metrics.body.find(obs::kReworkRatioPpm), std::string::npos);
  EXPECT_NE(metrics.body.find(std::string(obs::kTxnE2eSteps) +
                              "{shard=\"0\",quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find(std::string(obs::kTxnlifeDroppedTotal) +
                              "{shard=\"0\"} 0"),
            std::string::npos);

  // SSE streaming: max_events=1 ends the stream after the first snapshot
  // (the run is done, so no further hub version bumps would arrive) and
  // the connection closes server-side — a plain HTTP/1.0 read-to-EOF
  // client sees one complete event.
  auto sse = HttpFetch(port, "/debug/waits-for?stream=sse&max_events=1");
  ASSERT_TRUE(sse.ok);
  EXPECT_EQ(sse.status, 200);
  EXPECT_EQ(sse.content_type, "text/event-stream");
  EXPECT_NE(sse.body.find("event: snapshot\n"), std::string::npos);
  EXPECT_NE(sse.body.find("data: "), std::string::npos);
  EXPECT_NE(sse.body.find("\"phase\":\"done\""), std::string::npos);
  // One event exactly: a second "event:" line would mean max_events was
  // ignored.
  EXPECT_EQ(sse.body.find("event: snapshot"),
            sse.body.rfind("event: snapshot"));

  server.Stop();
}

}  // namespace
}  // namespace pardb

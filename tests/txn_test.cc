#include <gtest/gtest.h>

#include "txn/program.h"

namespace pardb::txn {
namespace {

const EntityId kA(0), kB(1), kC(2);

Program MustBuild(ProgramBuilder& b) {
  auto p = b.Build();
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(ProgramBuilderTest, SimpleValidProgram) {
  ProgramBuilder b("t", 1);
  b.LockExclusive(kA).Read(kA, 0).WriteVar(kA, 0).Commit();
  Program p = MustBuild(b);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.NumLockRequests(), 1u);
  EXPECT_EQ(p.LockRequestPositions(), std::vector<std::size_t>{0});
  EXPECT_EQ(p.LastLockRequestPosition(), std::optional<std::size_t>(0));
  EXPECT_EQ(p.name(), "t");
}

TEST(ProgramBuilderTest, LockAfterUnlockViolatesTwoPhase) {
  ProgramBuilder b("t", 0);
  b.LockExclusive(kA).Unlock(kA).LockExclusive(kB);
  auto p = b.Build();
  EXPECT_EQ(p.status().code(), StatusCode::kProtocolViolation);
}

TEST(ProgramBuilderTest, ReadWithoutLockRejected) {
  ProgramBuilder b("t", 1);
  b.LockExclusive(kA).Read(kB, 0);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kProtocolViolation);
}

TEST(ProgramBuilderTest, ReadAfterUnlockRejected) {
  ProgramBuilder b("t", 1);
  b.LockExclusive(kA).Unlock(kA).Read(kA, 0);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kProtocolViolation);
}

TEST(ProgramBuilderTest, WriteRequiresExclusive) {
  ProgramBuilder b("t", 0);
  b.LockShared(kA).WriteImm(kA, 1);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kProtocolViolation);
}

TEST(ProgramBuilderTest, WriteBeforeFirstLockRejected) {
  // Paper §4 assumption: no writes before the first lock request — applies
  // to local variables too.
  ProgramBuilder b("t", 1);
  b.Compute(0, Operand::Imm(1), ArithOp::kAdd, Operand::Imm(2));
  b.LockExclusive(kA);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kProtocolViolation);
}

TEST(ProgramBuilderTest, DoubleLockRejectedUpgradeAllowed) {
  ProgramBuilder b1("t", 0);
  b1.LockExclusive(kA).LockExclusive(kA);
  EXPECT_EQ(b1.Build().status().code(), StatusCode::kProtocolViolation);

  ProgramBuilder b2("t", 0);
  b2.LockExclusive(kA).LockShared(kA);
  EXPECT_EQ(b2.Build().status().code(), StatusCode::kProtocolViolation);

  ProgramBuilder b3("t", 0);
  b3.LockShared(kA).LockExclusive(kA).WriteImm(kA, 1);
  EXPECT_TRUE(b3.Build().ok());
}

TEST(ProgramBuilderTest, UnlockNotHeldRejected) {
  ProgramBuilder b("t", 0);
  b.LockExclusive(kA).Unlock(kB);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kProtocolViolation);
}

TEST(ProgramBuilderTest, DoubleUnlockRejected) {
  ProgramBuilder b("t", 0);
  b.LockExclusive(kA).Unlock(kA).Unlock(kA);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kProtocolViolation);
}

TEST(ProgramBuilderTest, OpsAfterCommitRejected) {
  ProgramBuilder b("t", 0);
  b.LockExclusive(kA).Commit().LockExclusive(kB);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(ProgramBuilderTest, VarOutOfRangeRejected) {
  ProgramBuilder b("t", 1);
  b.LockExclusive(kA).Read(kA, 5);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(ProgramBuilderTest, OperandVarOutOfRangeRejected) {
  ProgramBuilder b("t", 1);
  b.LockExclusive(kA).Write(kA, Operand::Var(3));
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(ProgramBuilderTest, InitVarGrowsFrame) {
  ProgramBuilder b("t", 1);
  b.InitVar(4, 99);
  b.LockExclusive(kA).Read(kA, 4);
  Program p = MustBuild(b);
  EXPECT_EQ(p.num_vars(), 5u);
  EXPECT_EQ(p.initial_vars()[4], 99);
  EXPECT_EQ(p.initial_vars()[2], 0);
}

TEST(ProgramTest, LockRequestPositions) {
  ProgramBuilder b("t", 1);
  b.LockExclusive(kA);                              // 0
  b.Read(kA, 0);                                    // 1
  b.LockShared(kB);                                 // 2
  b.Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(1));  // 3
  b.LockExclusive(kC);                              // 4
  b.Commit();
  Program p = MustBuild(b);
  EXPECT_EQ(p.LockRequestPositions(), (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(p.LastLockRequestPosition(), std::optional<std::size_t>(4));
}

TEST(ProgramTest, WriteSpreadScore) {
  // Clustered: both writes to kA at lock index 1 -> spread 0.
  ProgramBuilder c("clustered", 0);
  c.LockExclusive(kA).WriteImm(kA, 1).WriteImm(kA, 2).LockExclusive(kB);
  EXPECT_EQ(MustBuild(c).WriteSpreadScore(), 0u);

  // Scattered: writes to kA at lock indices 1 and 2 -> spread 1.
  ProgramBuilder s("scattered", 0);
  s.LockExclusive(kA).WriteImm(kA, 1).LockExclusive(kB).WriteImm(kA, 2);
  EXPECT_EQ(MustBuild(s).WriteSpreadScore(), 1u);
}

TEST(ProgramTest, ThreePhaseDetection) {
  ProgramBuilder tp("three-phase", 1);
  tp.LockExclusive(kA).LockExclusive(kB);
  tp.Read(kA, 0).WriteVar(kB, 0);
  tp.Unlock(kA).Unlock(kB).Commit();
  EXPECT_TRUE(MustBuild(tp).IsThreePhase());

  ProgramBuilder il("interleaved", 1);
  il.LockExclusive(kA).Read(kA, 0).LockExclusive(kB).Commit();
  EXPECT_FALSE(MustBuild(il).IsThreePhase());
}

TEST(ProgramTest, CountOpsAndToString) {
  ProgramBuilder b("t", 1);
  b.LockExclusive(kA).Read(kA, 0).WriteVar(kA, 0).Unlock(kA).Commit();
  Program p = MustBuild(b);
  EXPECT_EQ(p.CountOps(OpCode::kRead), 1u);
  EXPECT_EQ(p.CountOps(OpCode::kWrite), 1u);
  EXPECT_EQ(p.CountOps(OpCode::kLockExclusive), 1u);
  std::string s = p.ToString();
  EXPECT_NE(s.find("LX E0"), std::string::npos);
  EXPECT_NE(s.find("RD v0 <- E0"), std::string::npos);
  EXPECT_NE(s.find("WR E0 <- v0"), std::string::npos);
}

TEST(OpTest, ComputeToString) {
  Op op{OpCode::kCompute, EntityId(), 2, Operand::Var(1), Operand::Imm(5),
        ArithOp::kMul};
  EXPECT_EQ(op.ToString(), "CP v2 <- v1 * 5");
}

TEST(ProgramTest, EmptyProgramBuilds) {
  ProgramBuilder b("empty", 0);
  Program p = MustBuild(b);
  EXPECT_EQ(p.size(), 0u);
  EXPECT_FALSE(p.LastLockRequestPosition().has_value());
  EXPECT_TRUE(p.IsThreePhase());
  EXPECT_EQ(p.WriteSpreadScore(), 0u);
}

}  // namespace
}  // namespace pardb::txn

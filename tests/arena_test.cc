// Unit tests for the D15 slab/arena allocator and its inline-capacity
// vector: alignment guarantees, free-list reuse, geometric growth and the
// capped-OOM path.

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace pardb {
namespace {

TEST(ArenaTest, AllocationsAreMaxAligned) {
  Arena arena;
  for (std::size_t bytes : {1u, 3u, 16u, 24u, 100u, 1000u}) {
    void* p = arena.TryAllocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u)
        << "allocation of " << bytes << " bytes not max-aligned";
  }
}

TEST(ArenaTest, FreeListReusesBlocksOfSameSizeClass) {
  Arena arena;
  void* a = arena.TryAllocate(48);  // size class 64
  ASSERT_NE(a, nullptr);
  arena.FreeBlock(a, 48);
  // Any request rounding to the same class must come back from the free
  // list — the same block, with the reuse counter bumped.
  void* b = arena.TryAllocate(64);
  EXPECT_EQ(b, a);
  EXPECT_EQ(arena.reused_blocks(), 1u);
  // A different class must not hit that list.
  void* c = arena.TryAllocate(128);
  EXPECT_NE(c, a);
  EXPECT_EQ(arena.reused_blocks(), 1u);
}

TEST(ArenaTest, SteadyStateRecyclingReservesNoNewMemory) {
  Arena arena;
  void* first = arena.TryAllocate(32);
  arena.FreeBlock(first, 32);
  const std::size_t reserved = arena.bytes_reserved();
  // Alloc/free cycles of one size class are served entirely from the free
  // list: the chunk footprint must not move.
  for (int i = 0; i < 1000; ++i) {
    void* p = arena.TryAllocate(32);
    ASSERT_EQ(p, first);
    arena.FreeBlock(p, 32);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.reused_blocks(), 1000u);
}

TEST(ArenaTest, ChunksGrowGeometrically) {
  Arena arena(/*initial_chunk_bytes=*/256);
  const std::size_t r0 = arena.bytes_reserved();
  EXPECT_EQ(r0, 0u);
  // Exhaust several chunks; each new chunk doubles, so total reserved
  // grows but the number of system allocations stays logarithmic.
  std::size_t last = 0;
  for (int i = 0; i < 64; ++i) {
    ASSERT_NE(arena.TryAllocate(128), nullptr);
    ASSERT_GE(arena.bytes_reserved(), last);
    last = arena.bytes_reserved();
  }
  EXPECT_GE(last, 64u * 128u);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(/*initial_chunk_bytes=*/256);
  void* p = arena.TryAllocate(10000);  // class 16384 > chunk size
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 16384u);
}

TEST(ArenaTest, MaxBytesCapReturnsNullNotAbort) {
  Arena arena(/*initial_chunk_bytes=*/256, /*max_bytes=*/1024);
  std::vector<void*> blocks;
  void* p = nullptr;
  while ((p = arena.TryAllocate(64)) != nullptr) blocks.push_back(p);
  EXPECT_FALSE(blocks.empty());
  EXPECT_LE(arena.bytes_reserved(), 1024u);
  // Freed capacity is reusable even at the cap.
  arena.FreeBlock(blocks.back(), 64);
  EXPECT_EQ(arena.TryAllocate(64), blocks.back());
}

TEST(SmallVecTest, StaysInlineUpToCapacity) {
  SmallVec<std::uint32_t, 4> v;
  for (std::uint32_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_TRUE(v.spilled());
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, SpillsIntoAttachedArenaAndReturnsOnDestruction) {
  Arena arena;
  const std::size_t before = arena.bytes_reserved();
  {
    SmallVec<std::uint64_t, 2> v(&arena);
    for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i);
    EXPECT_TRUE(v.spilled());
    EXPECT_GT(arena.bytes_reserved(), before);
    for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  }
  // A second vector re-spilling must reuse the returned blocks: footprint
  // unchanged, reuse counter advanced.
  const std::size_t after_first = arena.bytes_reserved();
  const std::uint64_t reused = arena.reused_blocks();
  {
    SmallVec<std::uint64_t, 2> v(&arena);
    for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i);
  }
  EXPECT_EQ(arena.bytes_reserved(), after_first);
  EXPECT_GT(arena.reused_blocks(), reused);
}

TEST(SmallVecTest, InsertEraseTruncateKeepOrder) {
  SmallVec<std::uint32_t, 2> v;
  v.push_back(1);
  v.push_back(3);
  v.insert_at(1, 2);
  v.insert_at(3, 4);  // spills
  ASSERT_EQ(v.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], i + 1);
  v.erase_at(1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[1], 3u);
  EXPECT_EQ(v[2], 4u);
  v.truncate(1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1u);
}

TEST(SmallVecTest, MoveTransfersSpillOwnership) {
  Arena arena;
  SmallVec<std::uint32_t, 2> a(&arena);
  for (std::uint32_t i = 0; i < 10; ++i) a.push_back(i);
  ASSERT_TRUE(a.spilled());
  SmallVec<std::uint32_t, 2> b(std::move(a));
  EXPECT_TRUE(b.spilled());
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd reset
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(b[i], i);
}

}  // namespace
}  // namespace pardb

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/undirected.h"
#include "rollback/sdg.h"
#include "sim/scenario.h"
#include "txn/program.h"

namespace pardb::rollback {
namespace {

TEST(SdgTest, EmptyGraphTrivia) {
  StateDependencyGraph sdg;
  EXPECT_EQ(sdg.NumLockStates(), 0u);
  // The current point (no lock states yet) is trivially recreatable;
  // anything beyond it does not exist.
  EXPECT_TRUE(sdg.IsWellDefined(0));
  EXPECT_FALSE(sdg.IsWellDefined(1));
  EXPECT_EQ(sdg.LatestWellDefinedAtOrBefore(5), 0u);
}

TEST(SdgTest, NoWritesEverythingWellDefined) {
  StateDependencyGraph sdg;
  for (LockIndex q = 0; q < 5; ++q) sdg.AddLockState(q);
  EXPECT_EQ(sdg.WellDefinedStates(), (std::vector<LockIndex>{0, 1, 2, 3, 4}));
}

TEST(SdgTest, ChordDestroysInteriorStates) {
  StateDependencyGraph sdg;
  for (LockIndex q = 0; q < 6; ++q) sdg.AddLockState(q);
  sdg.RecordWrite(1, 4);  // destroys 2, 3
  EXPECT_TRUE(sdg.IsWellDefined(0));
  EXPECT_TRUE(sdg.IsWellDefined(1));
  EXPECT_FALSE(sdg.IsWellDefined(2));
  EXPECT_FALSE(sdg.IsWellDefined(3));
  EXPECT_TRUE(sdg.IsWellDefined(4));
  EXPECT_TRUE(sdg.IsWellDefined(5));
  EXPECT_EQ(sdg.LatestWellDefinedAtOrBefore(3), 1u);
  EXPECT_EQ(sdg.LatestWellDefinedAtOrBefore(4), 4u);
}

TEST(SdgTest, AdjacentChordDestroysNothing) {
  StateDependencyGraph sdg;
  for (LockIndex q = 0; q < 4; ++q) sdg.AddLockState(q);
  sdg.RecordWrite(2, 3);
  sdg.RecordWrite(3, 3);  // self-loop-ish: u == m
  EXPECT_EQ(sdg.WellDefinedStates().size(), 4u);
}

TEST(SdgTest, OverlappingChordsAccumulate) {
  StateDependencyGraph sdg;
  for (LockIndex q = 0; q < 7; ++q) sdg.AddLockState(q);
  sdg.RecordWrite(0, 3);  // destroys 1,2
  sdg.RecordWrite(1, 5);  // destroys 2,3,4
  EXPECT_EQ(sdg.WellDefinedStates(), (std::vector<LockIndex>{0, 5, 6}));
}

TEST(SdgTest, RewindRestoresCoverage) {
  StateDependencyGraph sdg;
  for (LockIndex q = 0; q < 7; ++q) sdg.AddLockState(q);
  sdg.RecordWrite(0, 3);
  sdg.RecordWrite(1, 5);
  sdg.RewindTo(3);  // drops the (1,5) write and lock states 4..6
  EXPECT_EQ(sdg.NumLockStates(), 4u);
  EXPECT_EQ(sdg.WellDefinedStates(), (std::vector<LockIndex>{0, 3}));
  sdg.RewindTo(0);
  EXPECT_EQ(sdg.WellDefinedStates(), (std::vector<LockIndex>{0}));
  EXPECT_EQ(sdg.NumRecordedWrites(), 0u);
}

TEST(SdgTest, ExportedGraphHasPathAndChords) {
  StateDependencyGraph sdg;
  for (LockIndex q = 0; q < 5; ++q) sdg.AddLockState(q);
  sdg.RecordWrite(1, 4);
  graph::UndirectedGraph g = sdg.ToUndirectedGraph();
  EXPECT_EQ(g.VertexCount(), 5u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(3, 4));
  EXPECT_TRUE(g.HasEdge(1, 4));  // the chord
}

// Corollary 1 cross-validation: a nontrivial lock state is well-defined iff
// it is an articulation point of the exported paper graph.
TEST(SdgTest, WellDefinedEqualsArticulationPoints) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    StateDependencyGraph sdg;
    const LockIndex n = 3 + rng.Uniform(10);
    for (LockIndex q = 0; q < n; ++q) sdg.AddLockState(q);
    // Random chords with u <= m < n, m non-decreasing.
    LockIndex m = 1;
    while (m < n) {
      if (rng.Bernoulli(0.6)) {
        LockIndex u = rng.Uniform(m + 1);
        sdg.RecordWrite(u, m);
      }
      if (rng.Bernoulli(0.5)) ++m;
    }
    graph::UndirectedGraph g = sdg.ToUndirectedGraph();
    auto cuts = g.ArticulationPoints();
    std::set<LockIndex> cut_set(cuts.begin(), cuts.end());
    for (LockIndex q = 1; q + 1 < n; ++q) {
      EXPECT_EQ(sdg.IsWellDefined(q), cut_set.count(q) > 0)
          << "state " << q << " of " << n << " in trial " << trial;
    }
    // Endpoints are trivially well-defined regardless of articulation.
    EXPECT_TRUE(sdg.IsWellDefined(0));
    EXPECT_TRUE(sdg.IsWellDefined(n - 1));
  }
}

TEST(SdgForProgramTest, ThreePhaseProgramFullyWellDefined) {
  storage::EntityStore store;
  auto ids = store.CreateMany(3);
  txn::ProgramBuilder b("tp", 1);
  b.LockExclusive(ids[0]).LockExclusive(ids[1]).LockExclusive(ids[2]);
  b.Read(ids[0], 0).WriteVar(ids[1], 0).WriteVar(ids[2], 0);
  b.Commit();
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  StateDependencyGraph sdg = BuildSdgForProgram(p.value());
  EXPECT_EQ(sdg.WellDefinedStates().size(), 3u);  // every lock state
}

TEST(SdgForProgramTest, Figure4OnlyTrivialStatesWellDefined) {
  storage::EntityStore store;
  auto ids = store.CreateMany(6);
  txn::Program p = sim::MakeFigure4Program(ids, /*omit_second_var_write=*/false);
  StateDependencyGraph sdg = BuildSdgForProgram(p);
  ASSERT_EQ(sdg.NumLockStates(), 6u);
  // Paper: "the only well-defined states are the trivial ones".
  EXPECT_EQ(sdg.WellDefinedStates(), std::vector<LockIndex>{0});
}

TEST(SdgForProgramTest, Figure4WithoutCkOpGainsStates) {
  storage::EntityStore store;
  auto ids = store.CreateMany(6);
  txn::Program p = sim::MakeFigure4Program(ids, /*omit_second_var_write=*/true);
  StateDependencyGraph sdg = BuildSdgForProgram(p);
  // Deleting the C <- K style op makes lock states 4 and 5 well-defined
  // (the paper's example deletes one op and state S_13/lock state 4 becomes
  // well-defined).
  EXPECT_EQ(sdg.WellDefinedStates(), (std::vector<LockIndex>{0, 4, 5}));
}

TEST(SdgForProgramTest, Figure5ClusteredAllStatesWellDefined) {
  storage::EntityStore store;
  auto ids = store.CreateMany(6);
  txn::Program p = sim::MakeFigure5Program(ids);
  StateDependencyGraph sdg = BuildSdgForProgram(p);
  ASSERT_EQ(sdg.NumLockStates(), 6u);
  EXPECT_EQ(sdg.WellDefinedStates(),
            (std::vector<LockIndex>{0, 1, 2, 3, 4, 5}));
  // Figure 5's program also scores 0 on write spread.
  EXPECT_EQ(p.WriteSpreadScore(), 0u);
}

TEST(SdgForProgramTest, Figure4And5SameOperationMultiset) {
  storage::EntityStore store;
  auto ids = store.CreateMany(6);
  txn::Program p4 = sim::MakeFigure4Program(ids, false);
  txn::Program p5 = sim::MakeFigure5Program(ids);
  for (txn::OpCode code :
       {txn::OpCode::kLockExclusive, txn::OpCode::kRead, txn::OpCode::kWrite,
        txn::OpCode::kCompute}) {
    EXPECT_EQ(p4.CountOps(code), p5.CountOps(code));
  }
  EXPECT_GT(p4.WriteSpreadScore(), p5.WriteSpreadScore());
}

}  // namespace
}  // namespace pardb::rollback

// Determinism safety net for the D15 data-oriented rewrite.
//
// The golden files under tests/golden/ were captured from the pre-rewrite
// binary on two pinned workloads (sim seed 7 / 120 txns; sharded seed 11 /
// 200 txns / 4 shards). The rewrite's contract is byte identity: the same
// report strings and the same D14 journal chain heads, which is exactly
// what `pardb diff-runs` checks between two recorded runs — chain-head
// equality here proves diff-runs would report zero divergence between the
// pre- and post-rewrite binaries.
//
// Also here: the Figure 1 / Figure 3 micro-tests pinning the public
// emission contract of LockManager::Holders / WaitQueue / HeldBy (sorted
// at the snapshot site, FIFO for queues), so the internal layout stays
// free to change.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "par/report_json.h"
#include "par/sharded_driver.h"
#include "sim/driver.h"
#include "sim/scenario.h"

namespace pardb {
namespace {

using lock::LockMode;

std::string ReadGolden(const std::string& name) {
  std::ifstream in(std::string(GOLDEN_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing golden file " << name;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string ChainLine(std::uint64_t c) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)c);
  return buf;
}

sim::SimOptions PinnedSim() {
  sim::SimOptions opt;
  opt.engine.scheduler = core::SchedulerKind::kRandom;
  opt.total_txns = 120;
  opt.concurrency = 12;
  opt.workload.num_entities = 16;
  opt.seed = 7;
  opt.engine.seed = 7;
  return opt;
}

par::ShardedOptions PinnedSharded() {
  par::ShardedOptions opt;
  opt.engine.scheduler = core::SchedulerKind::kRandom;
  opt.total_txns = 200;
  opt.num_shards = 4;
  opt.num_threads = 2;
  opt.seed = 11;
  opt.workload.num_entities = 32;
  opt.concurrency = 16;
  return opt;
}

TEST(HotpathGoldenTest, SimReportAndJournalChainMatchPreRewriteBytes) {
  auto rep = sim::RunSimulation(PinnedSim());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->ToString() + "\n", ReadGolden("golden_sim_report.txt"));

  std::ostringstream chain;
  chain << "records " << rep->journal_records << "\n";
  for (std::uint64_t c : rep->journal_chain) chain << ChainLine(c) << "\n";
  EXPECT_EQ(chain.str(), ReadGolden("golden_sim_chain.txt"))
      << "journal chain heads diverged from the pre-rewrite binary "
         "(pardb diff-runs would report a first-divergence)";
}

TEST(HotpathGoldenTest, ShardedReportAndChainsMatchPreRewriteBytes) {
  auto rep = par::RunSharded(PinnedSharded());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(par::ShardedReportToJson(rep.value()) + "\n",
            ReadGolden("golden_sharded_report.json"));

  std::ostringstream chain;
  for (const auto& s : rep->shards) {
    chain << "shard " << s.shard << " records " << s.journal_records << "\n";
    for (std::uint64_t c : s.journal_chain) chain << ChainLine(c) << "\n";
  }
  chain << "coord\n";
  for (std::uint64_t c : rep->coord_journal_chain) {
    chain << ChainLine(c) << "\n";
  }
  EXPECT_EQ(chain.str(), ReadGolden("golden_sharded_chain.txt"));
}

// The D16 compiled µop path must be invisible in every deterministic
// artifact: running the same pinned workloads on the fallback interpreter
// (compile_programs = false) must reproduce the same pre-rewrite golden
// bytes — report strings and journal chain heads alike.

TEST(HotpathGoldenTest, SimGoldenBytesIdenticalWithCompileOff) {
  sim::SimOptions opt = PinnedSim();
  opt.engine.compile_programs = false;
  auto rep = sim::RunSimulation(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->ToString() + "\n", ReadGolden("golden_sim_report.txt"));

  std::ostringstream chain;
  chain << "records " << rep->journal_records << "\n";
  for (std::uint64_t c : rep->journal_chain) chain << ChainLine(c) << "\n";
  EXPECT_EQ(chain.str(), ReadGolden("golden_sim_chain.txt"))
      << "interpreter and compiled paths diverged (D16 contract broken)";
}

TEST(HotpathGoldenTest, ShardedGoldenBytesIdenticalWithCompileOff) {
  par::ShardedOptions opt = PinnedSharded();
  opt.engine.compile_programs = false;
  auto rep = par::RunSharded(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(par::ShardedReportToJson(rep.value()) + "\n",
            ReadGolden("golden_sharded_report.json"));

  std::ostringstream chain;
  for (const auto& s : rep->shards) {
    chain << "shard " << s.shard << " records " << s.journal_records << "\n";
    for (std::uint64_t c : s.journal_chain) chain << ChainLine(c) << "\n";
  }
  chain << "coord\n";
  for (std::uint64_t c : rep->coord_journal_chain) {
    chain << ChainLine(c) << "\n";
  }
  EXPECT_EQ(chain.str(), ReadGolden("golden_sharded_chain.txt"));
}

// ---------------------------------------------------------------------------
// Holders / WaitQueue / HeldBy emission contract on the paper fixtures.
// ---------------------------------------------------------------------------

core::EngineOptions PaperOptions() {
  core::EngineOptions opt;
  opt.victim_policy = core::VictimPolicyKind::kMinCost;
  opt.strategy = rollback::StrategyKind::kMcs;
  return opt;
}

TEST(LockEmissionTest, Figure1HoldersAndQueuesUnchanged) {
  auto fig = sim::BuildFigure1(PaperOptions());
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  const auto& lm = fig->runner->engine().lock_manager();

  // Single X holders on the figure's contended entities.
  const auto holders_b = lm.Holders(fig->b);
  ASSERT_EQ(holders_b.size(), 1u);
  EXPECT_EQ(holders_b[0].first, fig->t2);
  EXPECT_EQ(holders_b[0].second, LockMode::kExclusive);
  const auto holders_c = lm.Holders(fig->c);
  ASSERT_EQ(holders_c.size(), 1u);
  EXPECT_EQ(holders_c[0].first, fig->t3);
  const auto holders_e = lm.Holders(fig->e);
  ASSERT_EQ(holders_e.size(), 1u);
  EXPECT_EQ(holders_e[0].first, fig->t4);

  // b's queue holds T1 (blocked from state 3) and T3 (from state 11),
  // both exclusive, in FIFO request order — queues are semantic order,
  // never sorted.
  const auto queue_b = lm.WaitQueue(fig->b);
  ASSERT_EQ(queue_b.size(), 2u);
  EXPECT_EQ(queue_b[0].first, fig->t1);
  EXPECT_EQ(queue_b[1].first, fig->t3);
  EXPECT_EQ(queue_b[0].second, LockMode::kExclusive);
  EXPECT_EQ(queue_b[1].second, LockMode::kExclusive);

  // T2 holds its filler entity plus f and b: HeldBy emits entity-id order
  // regardless of grant order (b was granted after f).
  const auto held_t2 = lm.HeldBy(fig->t2);
  ASSERT_EQ(held_t2.size(), 3u);
  for (std::size_t i = 1; i < held_t2.size(); ++i) {
    EXPECT_LT(held_t2[i - 1].first, held_t2[i].first);
  }
  EXPECT_EQ(held_t2[1].first, fig->b);
  EXPECT_EQ(held_t2[2].first, fig->f);
}

TEST(LockEmissionTest, Figure3cSharedHoldersSortedByTxn) {
  auto fig = sim::BuildFigure3c(PaperOptions());
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  const auto& lm = fig->runner->engine().lock_manager();

  // f is S-held by T2 and T3; Holders emits txn-id order regardless of
  // grant order.
  const auto holders_f = lm.Holders(fig->f);
  ASSERT_EQ(holders_f.size(), 2u);
  EXPECT_EQ(holders_f[0].first, fig->t2);
  EXPECT_EQ(holders_f[0].second, LockMode::kShared);
  EXPECT_EQ(holders_f[1].first, fig->t3);
  EXPECT_EQ(holders_f[1].second, LockMode::kShared);

  // T1 X-holds x and y; entity-id order.
  const auto held_t1 = lm.HeldBy(fig->t1);
  ASSERT_GE(held_t1.size(), 2u);
  for (std::size_t i = 1; i < held_t1.size(); ++i) {
    EXPECT_LT(held_t1[i - 1].first, held_t1[i].first);
  }

  // T2 waits for x, T3 for y (each a queue of one).
  const auto queue_x = lm.WaitQueue(fig->x);
  ASSERT_EQ(queue_x.size(), 1u);
  EXPECT_EQ(queue_x[0].first, fig->t2);
  const auto queue_y = lm.WaitQueue(fig->y);
  ASSERT_EQ(queue_y.size(), 1u);
  EXPECT_EQ(queue_y[0].first, fig->t3);
}

}  // namespace
}  // namespace pardb

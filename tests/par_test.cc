// Sharded parallel execution: routing, thread pool, determinism and
// aggregate correctness of par::RunSharded. The whole suite is also run
// under ThreadSanitizer in CI (-DPARDB_TSAN=ON).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "dist/distributed.h"
#include "obs/metric_names.h"
#include "par/admission_queue.h"
#include "obs/serve/hub.h"
#include "par/report_json.h"
#include "par/router.h"
#include "par/sharded_driver.h"
#include "par/stealing_pool.h"
#include "par/thread_pool.h"
#include "txn/program.h"

namespace pardb::par {
namespace {

txn::Program LockProgram(const std::vector<EntityId>& entities) {
  txn::ProgramBuilder b("p", 0);
  for (EntityId e : entities) b.LockExclusive(e);
  b.Commit();
  auto p = b.Build();
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

// Finds entity ids on the given shard (under the 4-shard partition).
std::vector<EntityId> EntitiesOnShard(std::uint32_t shard,
                                      std::uint32_t num_shards,
                                      std::size_t count) {
  std::vector<EntityId> out;
  for (std::uint64_t e = 0; out.size() < count && e < 10'000; ++e) {
    if (dist::SiteOfEntity(EntityId(e), num_shards) == shard) {
      out.push_back(EntityId(e));
    }
  }
  EXPECT_EQ(out.size(), count);
  return out;
}

TEST(RouterTest, FootprintIsDistinctEntitiesInLockOrder) {
  txn::ProgramBuilder b("p", 1);
  b.LockShared(EntityId(7))
      .LockExclusive(EntityId(3))
      .LockExclusive(EntityId(7))  // S->X upgrade: not a new footprint entry
      .Read(EntityId(3), 0)
      .Commit();
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  auto fp = EntityFootprint(p.value());
  ASSERT_EQ(fp.size(), 2u);
  EXPECT_EQ(fp[0], EntityId(7));
  EXPECT_EQ(fp[1], EntityId(3));
}

TEST(RouterTest, SingleShardFootprintRoutedHome) {
  const std::uint32_t kShards = 4;
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    auto program = LockProgram(EntitiesOnShard(shard, kShards, 3));
    const Route r = RouteProgram(program, kShards, /*coordinator_shard=*/0);
    EXPECT_FALSE(r.cross_shard);
    EXPECT_EQ(r.shard, shard);
  }
}

TEST(RouterTest, SpanningFootprintGoesToCoordinator) {
  const std::uint32_t kShards = 4;
  std::vector<EntityId> mixed = EntitiesOnShard(1, kShards, 1);
  mixed.push_back(EntitiesOnShard(2, kShards, 1)[0]);
  const Route r = RouteProgram(LockProgram(mixed), kShards,
                               /*coordinator_shard=*/3);
  EXPECT_TRUE(r.cross_shard);
  EXPECT_EQ(r.shard, 3u);
}

TEST(RouterTest, SingleShardSystemRoutesEverythingToShardZero) {
  auto program = LockProgram({EntityId(5), EntityId(9)});
  const Route r = RouteProgram(program, 1, 0);
  EXPECT_FALSE(r.cross_shard);
  EXPECT_EQ(r.shard, 0u);
}

TEST(RouterTest, ShardUniversesPartitionTheEntityRange) {
  const std::uint64_t kEntities = 257;
  auto universes = ShardEntityUniverses(kEntities, 4);
  ASSERT_EQ(universes.size(), 4u);
  std::set<EntityId> seen;
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (EntityId e : universes[s]) {
      EXPECT_EQ(dist::SiteOfEntity(e, 4), s);
      EXPECT_TRUE(seen.insert(e).second) << "entity in two universes";
    }
  }
  EXPECT_EQ(seen.size(), kEntities);
}

TEST(ThreadPoolTest, RunsEveryTaskAcrossBatches) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();  // pool is reusable after Wait
    EXPECT_EQ(count.load(), (batch + 1) * 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool waits for the queue
  EXPECT_EQ(count.load(), 50);
}

TEST(StealingPoolTest, ReusableAcrossWaitBatches) {
  StealingPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  EXPECT_EQ(pool.current_worker(), -1);  // the test body is not a worker
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();  // pool is reusable after Wait
    EXPECT_EQ(count.load(), (batch + 1) * 100);
  }
}

TEST(StealingPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    StealingPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~StealingPool waits for the queues
  EXPECT_EQ(count.load(), 50);
}

TEST(StealingPoolTest, TasksSubmittedFromInsideATaskFinishBeforeWaitReturns) {
  // The sharded driver's quantum chain: each task resubmits the next from
  // inside a worker, landing on that worker's own deque. Wait() must cover
  // the whole chain, not just the externally submitted head.
  StealingPool pool(3);
  std::atomic<int> count{0};
  std::atomic<int> remaining{200};
  std::function<void()> step = [&] {
    EXPECT_GE(pool.current_worker(), 0);
    EXPECT_LT(pool.current_worker(), 3);
    count.fetch_add(1, std::memory_order_relaxed);
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) > 1) {
      pool.Submit(step);
    }
  };
  pool.Submit(step);
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(StealingPoolTest, SelfResubmittingChainNeverOverlapsItself) {
  // A chain's next link is submitted by the previous one, so at most one
  // link is ever runnable — the structural ready-token the sharded driver
  // relies on so no engine is touched by two threads.
  StealingPool pool(4);
  std::atomic<bool> inside{false};
  std::atomic<int> overlaps{0};
  std::atomic<int> left{500};
  std::function<void()> quantum = [&] {
    if (inside.exchange(true, std::memory_order_acq_rel)) {
      overlaps.fetch_add(1, std::memory_order_relaxed);
    }
    inside.store(false, std::memory_order_release);
    if (left.fetch_sub(1, std::memory_order_acq_rel) > 1) {
      pool.Submit(quantum);
    }
  };
  pool.Submit(quantum);
  pool.Wait();
  EXPECT_EQ(overlaps.load(), 0);
  EXPECT_EQ(left.load(), 0);
}

TEST(StealingPoolTest, IdleWorkerStealsFromABusyWorkersDeque) {
  // One worker parks inside a task after pushing a second task onto its
  // own deque; only a steal by the other worker can run it.
  StealingPool pool(2);
  std::atomic<bool> stolen_ran{false};
  pool.Submit([&] {
    pool.Submit([&] { stolen_ran.store(true, std::memory_order_release); });
    while (!stolen_ran.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  pool.Wait();
  EXPECT_TRUE(stolen_ran.load());
  EXPECT_GE(pool.steals(), 1u);
}

TEST(StealingPoolTest, EveryTaskRunsExactlyOnceAndCountersAddUp) {
  StealingPool pool(4);
  constexpr int kTasks = 300;
  std::vector<std::atomic<int>> runs(kTasks);  // value-initialized to 0
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&runs, i] { runs[i].fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  std::uint64_t executed = 0;
  for (std::size_t w = 0; w < pool.num_threads(); ++w) {
    executed += pool.tasks_executed(w);
    EXPECT_LE(pool.busy_nanos(w), pool.uptime_nanos());
  }
  EXPECT_EQ(executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_LE(pool.steals(), executed);
}

ShardedOptions SmallOptions(std::uint32_t shards, std::uint64_t seed) {
  ShardedOptions opt;
  // These tests pin the original coordinator-replica routing: their
  // assertions (committed == assigned per shard, overlap formula, pipeline
  // equivalence) describe that path. Locks-mode runs are covered by
  // xshard_test.
  opt.xshard = XShardMode::kReplica;
  opt.num_shards = shards;
  opt.workload.num_entities = 64;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.workload.ops_per_entity = 2;
  opt.cross_shard_fraction = 0.2;
  opt.concurrency = 8;
  opt.total_txns = 120;
  opt.seed = seed;
  opt.engine.scheduler = core::SchedulerKind::kRandom;
  return opt;
}

TEST(ShardedDriverTest, CommitsEveryTransactionAndStaysSerializable) {
  auto rep = RunSharded(SmallOptions(4, 11));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->committed, 120u);
  EXPECT_TRUE(rep->completed);
  EXPECT_TRUE(rep->serializable);
  ASSERT_EQ(rep->shards.size(), 4u);
  std::uint64_t assigned = 0;
  for (const ShardResult& s : rep->shards) {
    EXPECT_EQ(s.committed, s.assigned);
    EXPECT_TRUE(s.serializable);
    assigned += s.assigned;
  }
  EXPECT_EQ(assigned, 120u);
  EXPECT_TRUE(std::isfinite(rep->goodput));
  EXPECT_TRUE(std::isfinite(rep->wasted_fraction));
}

TEST(ShardedDriverTest, BitIdenticalAcrossRepeatedRuns) {
  // Same options, repeated runs, different worker counts: thread
  // scheduling must not leak into the report.
  auto opt = SmallOptions(2, 7);
  auto a = RunSharded(opt);
  ASSERT_TRUE(a.ok());
  auto b = RunSharded(opt);
  ASSERT_TRUE(b.ok());
  opt.num_threads = 1;  // fully serial execution of the same shards
  auto c = RunSharded(opt);
  ASSERT_TRUE(c.ok());
  const std::string ja = ShardedReportToJson(a.value());
  EXPECT_EQ(ja, ShardedReportToJson(b.value()));
  EXPECT_EQ(ja, ShardedReportToJson(c.value()));
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(ShardedDriverTest, ShardsUseDistinctDerivedSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint32_t s = 0; s < 16; ++s) {
    seeds.insert(DeriveShardSeed(42, s));
  }
  EXPECT_EQ(seeds.size(), 16u);
  EXPECT_NE(DeriveShardSeed(42, 0), DeriveShardSeed(43, 0));
}

TEST(ShardedDriverTest, CrossShardFractionTracksWorkloadLocality) {
  auto local = SmallOptions(4, 3);
  local.cross_shard_fraction = 0.0;  // every txn drawn from one shard's pool
  auto lrep = RunSharded(local);
  ASSERT_TRUE(lrep.ok());
  EXPECT_EQ(lrep->cross_shard_txns, 0u);

  auto mixed = SmallOptions(4, 3);
  mixed.cross_shard_fraction = 1.0;  // every txn drawn from the full range
  auto mrep = RunSharded(mixed);
  ASSERT_TRUE(mrep.ok());
  // Multi-entity txns over a 4-shard hash partition almost surely span
  // shards; all of those serialize through the coordinator (shard 0).
  EXPECT_GT(mrep->cross_shard_fraction, 0.5);
  for (const ShardResult& s : mrep->shards) {
    if (s.shard != 0) continue;
    EXPECT_GE(s.assigned, mrep->cross_shard_txns);
  }
}

TEST(ShardedDriverTest, ZeroTransactionReportIsFiniteZeros) {
  auto opt = SmallOptions(2, 1);
  opt.total_txns = 0;
  auto rep = RunSharded(opt);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->committed, 0u);
  EXPECT_EQ(rep->goodput, 0.0);
  EXPECT_EQ(rep->wasted_fraction, 0.0);
  EXPECT_EQ(rep->cross_shard_fraction, 0.0);
  EXPECT_TRUE(std::isfinite(rep->goodput));
}

TEST(ShardedDriverTest, InvalidOptionsRejected) {
  auto opt = SmallOptions(2, 1);
  opt.num_shards = 0;
  EXPECT_EQ(RunSharded(opt).status().code(), StatusCode::kInvalidArgument);
  opt = SmallOptions(2, 1);
  opt.coordinator_shard = 2;
  EXPECT_EQ(RunSharded(opt).status().code(), StatusCode::kInvalidArgument);
  opt = SmallOptions(2, 1);
  opt.workload.num_entities = 0;
  EXPECT_EQ(RunSharded(opt).status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedDriverTest, AggregateMatchesShardSums) {
  auto rep = RunSharded(SmallOptions(4, 19));
  ASSERT_TRUE(rep.ok());
  std::uint64_t commits = 0, rollbacks = 0, ops = 0, costs = 0;
  for (const ShardResult& s : rep->shards) {
    commits += s.metrics.commits;
    rollbacks += s.metrics.rollbacks;
    ops += s.metrics.ops_executed;
    costs += s.rollback_costs.count;
  }
  EXPECT_EQ(rep->aggregate.commits, commits);
  EXPECT_EQ(rep->aggregate.rollbacks, rollbacks);
  EXPECT_EQ(rep->aggregate.ops_executed, ops);
  EXPECT_EQ(rep->rollback_costs.count, costs);
}

TEST(ShardedDriverTest, ReportBitIdenticalAcrossSchedulersWorkersAndQuanta) {
  // The scheduler decides only *where and when* quanta run, never what a
  // shard computes — so the report must be byte-identical across
  // run-to-completion vs time-slicing, any worker count, any quantum size,
  // and repeated runs.
  auto opt = SmallOptions(4, 13);
  opt.scheduler = ShardScheduler::kTimeSlice;
  opt.num_threads = 4;
  auto golden_rep = RunSharded(opt);
  ASSERT_TRUE(golden_rep.ok());
  const std::string golden = ShardedReportToJson(golden_rep.value());

  for (int rep = 0; rep < 4; ++rep) {  // 5 runs total with the golden one
    auto r = RunSharded(opt);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(golden, ShardedReportToJson(r.value())) << "repeat " << rep;
  }
  for (auto sched : {ShardScheduler::kTimeSlice,
                     ShardScheduler::kRunToCompletion}) {
    for (std::size_t workers : {1u, 2u, 4u, 7u}) {
      auto v = opt;
      v.scheduler = sched;
      v.num_threads = workers;
      auto r = RunSharded(v);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(golden, ShardedReportToJson(r.value()))
          << "scheduler=" << (sched == ShardScheduler::kTimeSlice ? "ts" : "rtc")
          << " workers=" << workers;
    }
  }
  // Ragged quanta, adaptation off: still the same step sequences.
  auto v = opt;
  v.quantum_steps = 7;
  v.min_quantum_steps = 1;
  v.adaptive_quantum = false;
  auto r = RunSharded(v);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(golden, ShardedReportToJson(r.value()));
}

TEST(ShardedDriverTest, SchedulerStatsAreFilledAndMakespanIsBounded) {
  auto opt = SmallOptions(4, 11);
  opt.scheduler = ShardScheduler::kTimeSlice;
  opt.num_threads = 2;
  opt.quantum_steps = 64;
  auto rep = RunSharded(opt);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->scheduler.num_workers, 2u);
  EXPECT_GE(rep->scheduler.quanta, 4u);  // at least one per shard
  std::uint64_t total_steps = 0, max_shard_steps = 0;
  for (const ShardResult& s : rep->shards) {
    total_steps += s.metrics.steps;
    max_shard_steps = std::max(max_shard_steps, s.metrics.steps);
  }
  // Greedy list scheduling on 2 virtual workers: the makespan sits between
  // perfect parallelism's lower bounds and the fully serial upper bound.
  EXPECT_GE(rep->scheduler.virtual_makespan_steps, max_shard_steps);
  EXPECT_GE(rep->scheduler.virtual_makespan_steps, (total_steps + 1) / 2);
  EXPECT_LE(rep->scheduler.virtual_makespan_steps, total_steps);
}

TEST(ShardedDriverTest, HotShardRoutingIsDeterministicAndChangesPlacement) {
  auto hot = SmallOptions(4, 9);
  hot.workload.zipf_theta = 0.9;
  hot.cross_shard_fraction = 0.0;  // isolate the local-routing change
  hot.hot_shard_routing = true;
  auto a = RunSharded(hot);
  ASSERT_TRUE(a.ok());
  auto b = RunSharded(hot);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShardedReportToJson(a.value()), ShardedReportToJson(b.value()));
  EXPECT_EQ(a->committed, hot.total_txns);
  EXPECT_TRUE(a->serializable);

  auto uniform = hot;
  uniform.hot_shard_routing = false;
  auto u = RunSharded(uniform);
  ASSERT_TRUE(u.ok());
  // Zipf-homed placement must actually differ from the uniform spread.
  bool differs = false;
  for (std::size_t s = 0; s < a->shards.size(); ++s) {
    differs |= a->shards[s].assigned != u->shards[s].assigned;
  }
  EXPECT_TRUE(differs);
}

TEST(ShardedDriverTest, NonPowerOfTwoHubSnapshotPeriodRoundsUpAndPublishes) {
  // hub_snapshot_period = 100 used to corrupt the cadence mask (100 & 99
  // is not a power-of-two mask); it now rounds up to 128 internally.
  obs::LiveHub hub;
  auto opt = SmallOptions(2, 7);
  opt.hub = &hub;
  opt.hub_snapshot_period = 100;
  auto rep = RunSharded(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->completed);
  EXPECT_EQ(rep->committed, opt.total_txns);
  auto snaps = hub.Snapshots();
  EXPECT_EQ(snaps.size(), 2u);  // the end-of-run snapshot per shard
}

TEST(ShardedDriverTest, JsonIsWellFormedEnoughToGrep) {
  auto rep = RunSharded(SmallOptions(2, 5));
  ASSERT_TRUE(rep.ok());
  const std::string json = ShardedReportToJson(rep.value());
  EXPECT_NE(json.find("\"num_shards\":2"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":["), std::string::npos);
  EXPECT_NE(json.find("\"cross_shard_fraction\":"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(AdmissionQueueTest, DeliversFifoThenReportsClosedForever) {
  AdmissionQueue q(8);
  for (std::uint64_t e = 0; e < 5; ++e) q.Push(LockProgram({EntityId(e)}));
  q.Close();
  EXPECT_TRUE(q.closed());
  txn::Program p;
  for (std::uint64_t e = 0; e < 5; ++e) {
    ASSERT_EQ(q.TryPop(&p), AdmissionQueue::Pop::kItem);
    EXPECT_EQ(p.op(0).entity, EntityId(e));  // FIFO: admission order is
  }                                          // generation order
  EXPECT_EQ(q.TryPop(&p), AdmissionQueue::Pop::kClosed);
  EXPECT_EQ(q.WaitPop(&p, std::chrono::microseconds(1)),
            AdmissionQueue::Pop::kClosed);  // end-of-stream is sticky
  EXPECT_EQ(q.pushed(), 5u);
  EXPECT_EQ(q.popped(), 5u);
}

TEST(AdmissionQueueTest, BackpressureBlocksProducerWithoutDropping) {
  // Producer blocks on a full queue, nothing is dropped, and the consumer
  // observes the end-of-stream token exactly once. Runs under TSan in CI.
  constexpr std::size_t kCapacity = 4;
  constexpr std::uint64_t kItems = 64;
  AdmissionQueue q(kCapacity);
  std::atomic<std::uint64_t> produced{0};
  std::thread producer([&q, &produced] {
    for (std::uint64_t e = 0; e < kItems; ++e) {
      q.Push(LockProgram({EntityId(e)}));
      produced.fetch_add(1, std::memory_order_release);
    }
    q.Close();
  });
  // With no consumer the producer must wedge at capacity, not run ahead.
  while (q.depth() < kCapacity) std::this_thread::yield();
  EXPECT_LE(produced.load(std::memory_order_acquire), kCapacity);

  txn::Program p;
  std::uint64_t next = 0, closed_seen = 0;
  for (;;) {
    auto r = q.WaitPop(&p, std::chrono::microseconds(100));
    if (r == AdmissionQueue::Pop::kEmpty) continue;
    if (r == AdmissionQueue::Pop::kClosed) {
      ++closed_seen;
      break;
    }
    EXPECT_EQ(p.op(0).entity, EntityId(next));  // in order, none dropped
    ++next;
  }
  producer.join();
  EXPECT_EQ(next, kItems);
  EXPECT_EQ(closed_seen, 1u);
  EXPECT_EQ(q.pushed(), kItems);
  EXPECT_EQ(q.popped(), kItems);
  EXPECT_GE(q.blocked_pushes(), 1u);  // backpressure actually engaged
  EXPECT_EQ(q.TryPop(&p), AdmissionQueue::Pop::kClosed);
}

TEST(AdmissionQueueTest, AbandonUnblocksProducerAndDiscards) {
  // Consumer death (shard failure) must not wedge the producer mid-sweep.
  AdmissionQueue q(1);
  q.Push(LockProgram({EntityId(0)}));  // queue now full
  std::thread producer([&q] {
    for (std::uint64_t e = 1; e < 8; ++e) q.Push(LockProgram({EntityId(e)}));
    q.Close();
  });
  q.Abandon();
  producer.join();  // every Push returned despite nobody popping
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.depth(), 0u);
  txn::Program p;
  EXPECT_EQ(q.TryPop(&p), AdmissionQueue::Pop::kClosed);
}

TEST(ShardedDriverTest, PipelinedReportMatchesBatchByteForByte) {
  // The pipelined-admission determinism contract: streaming generation
  // through bounded queues must reproduce the batch report exactly — same
  // routing sweep, same refill points, same step sequences — across queue
  // capacities, worker counts, and both shard schedulers.
  auto opt = SmallOptions(4, 13);
  opt.pipeline = false;
  auto batch = RunSharded(opt);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_FALSE(batch->admission.pipelined);
  EXPECT_EQ(batch->admission.overlap_fraction, 0.0);
  EXPECT_EQ(batch->admission.peak_materialized_programs, opt.total_txns);
  const std::string golden = ShardedReportToJson(batch.value());

  for (std::size_t capacity : {1u, 8u, 1024u}) {
    for (std::size_t workers : {1u, 4u, 7u}) {
      auto v = opt;
      v.pipeline = true;
      v.admission_queue_capacity = capacity;
      v.num_threads = workers;
      auto r = RunSharded(v);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(golden, ShardedReportToJson(r.value()))
          << "capacity=" << capacity << " workers=" << workers;
      EXPECT_TRUE(r->admission.pipelined);
      EXPECT_EQ(r->admission.queue_capacity, capacity);
      // Backpressure bounds materialization: one program per queue slot
      // plus at most one in the producer's hand.
      EXPECT_LE(r->admission.peak_materialized_programs,
                opt.num_shards * capacity + 1);
    }
  }
  // Time-sliced quanta over streaming queues: still the same report.
  auto ts = opt;
  ts.pipeline = true;
  ts.scheduler = ShardScheduler::kTimeSlice;
  ts.quantum_steps = 7;
  ts.min_quantum_steps = 1;
  ts.adaptive_quantum = false;
  auto r = RunSharded(ts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(golden, ShardedReportToJson(r.value())) << "time-sliced";
}

TEST(ShardedDriverTest, OverlapFractionIsTheDeterministicRoutingFormula) {
  // overlap = sum over shards of max(0, assigned - capacity) / total: a
  // function of routing counts and the capacity only, so it is exactly
  // reproducible — the single-CPU CI proxy for pipelining effectiveness.
  auto opt = SmallOptions(4, 17);
  opt.admission_queue_capacity = 4;
  auto rep = RunSharded(opt);  // pipeline defaults on
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_TRUE(rep->admission.pipelined);
  std::uint64_t overflow = 0;
  for (const ShardResult& s : rep->shards) {
    if (s.assigned > opt.admission_queue_capacity) {
      overflow += s.assigned - opt.admission_queue_capacity;
    }
  }
  const double expected =
      static_cast<double>(overflow) / static_cast<double>(opt.total_txns);
  EXPECT_EQ(rep->admission.overlap_fraction, expected);
  EXPECT_GT(rep->admission.overlap_fraction, 0.0);
  auto again = RunSharded(opt);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->admission.overlap_fraction,
            rep->admission.overlap_fraction);
}

TEST(ShardedDriverTest, InterimHubExportsDoNotDoubleCountTotals) {
  // A tight snapshot cadence makes every shard export its engine
  // aggregates many times mid-run (live /metrics quantiles). The delta
  // exporter must still land the merged registry on the exact totals.
  obs::LiveHub hub;
  auto opt = SmallOptions(2, 7);
  opt.hub = &hub;
  opt.hub_snapshot_period = 16;
  auto rep = RunSharded(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  for (const ShardResult& s : rep->shards) {
    const obs::LabelSet labels{{obs::kShardLabel, std::to_string(s.shard)}};
    const auto* steps = rep->metrics.Find(obs::kStepsTotal, labels);
    ASSERT_NE(steps, nullptr) << "shard " << s.shard;
    EXPECT_EQ(steps->counter, s.metrics.steps) << "shard " << s.shard;
    const auto* commits = rep->metrics.Find(obs::kCommitsTotal, labels);
    ASSERT_NE(commits, nullptr) << "shard " << s.shard;
    EXPECT_EQ(commits->counter, s.metrics.commits) << "shard " << s.shard;
    const auto* costs = rep->metrics.Find(obs::kRollbackCostOps, labels);
    ASSERT_NE(costs, nullptr) << "shard " << s.shard;
    EXPECT_EQ(costs->hist.count, s.rollback_costs.count)
        << "shard " << s.shard;
  }
}

}  // namespace
}  // namespace pardb::par

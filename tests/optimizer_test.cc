#include <gtest/gtest.h>

#include "core/engine.h"
#include "rollback/sdg.h"
#include "sim/scenario.h"
#include "sim/workload.h"
#include "storage/entity_store.h"
#include "txn/optimizer.h"

namespace pardb::txn {
namespace {

// Runs a program alone against a fresh store and returns the final state.
std::vector<std::pair<EntityId, Value>> RunSolo(const Program& p,
                                                std::uint64_t entities) {
  storage::EntityStore store;
  store.CreateMany(entities, 100);
  core::Engine engine(&store, core::EngineOptions{});
  auto t = engine.Spawn(p);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(engine.RunToCompletion().ok());
  return store.Snapshot();
}

TEST(ClusterWritesTest, Figure4BecomesFullyWellDefined) {
  storage::EntityStore store;
  auto ids = store.CreateMany(6);
  Program scattered = sim::MakeFigure4Program(ids, false);
  ASSERT_GT(scattered.WriteSpreadScore(), 0u);

  auto clustered = ClusterWrites(scattered);
  ASSERT_TRUE(clustered.ok()) << clustered.status().ToString();
  EXPECT_EQ(clustered->WriteSpreadScore(), 0u);

  auto sdg = rollback::BuildSdgForProgram(clustered.value());
  EXPECT_EQ(sdg.WellDefinedStates().size(), sdg.NumLockStates())
      << "every lock state should be well-defined after clustering";

  // Same operation multiset.
  for (OpCode code : {OpCode::kLockExclusive, OpCode::kLockShared,
                      OpCode::kRead, OpCode::kWrite, OpCode::kCompute,
                      OpCode::kUnlock, OpCode::kCommit}) {
    EXPECT_EQ(clustered->CountOps(code), scattered.CountOps(code));
  }

  // Identical solo semantics.
  EXPECT_EQ(RunSolo(scattered, 6), RunSolo(clustered.value(), 6));
}

TEST(ClusterWritesTest, PreservesLockAcquisitionOrder) {
  storage::EntityStore store;
  auto ids = store.CreateMany(6);
  Program p = sim::MakeFigure4Program(ids, false);
  auto c = ClusterWrites(p);
  ASSERT_TRUE(c.ok());
  std::vector<EntityId> original, transformed;
  for (const Op& op : p.ops()) {
    if (op.code == OpCode::kLockExclusive || op.code == OpCode::kLockShared) {
      original.push_back(op.entity);
    }
  }
  for (const Op& op : c->ops()) {
    if (op.code == OpCode::kLockExclusive || op.code == OpCode::kLockShared) {
      transformed.push_back(op.entity);
    }
  }
  EXPECT_EQ(original, transformed);
}

TEST(ClusterWritesTest, RandomProgramsKeepSemanticsAndImprove) {
  sim::WorkloadOptions opt;
  opt.num_entities = 10;
  opt.min_locks = 3;
  opt.max_locks = 6;
  opt.ops_per_entity = 3;
  opt.pattern = sim::WritePattern::kScattered;
  opt.shared_fraction = 0.3;
  sim::WorkloadGenerator gen(opt, 31);
  std::uint64_t improved = 0;
  for (int i = 0; i < 60; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok());
    auto c = ClusterWrites(p.value());
    ASSERT_TRUE(c.ok()) << c.status().ToString() << "\n"
                        << p.value().ToString();
    EXPECT_LE(c->WriteSpreadScore(), p.value().WriteSpreadScore());
    if (c->WriteSpreadScore() < p.value().WriteSpreadScore()) ++improved;
    EXPECT_EQ(RunSolo(p.value(), opt.num_entities),
              RunSolo(c.value(), opt.num_entities))
        << p.value().ToString() << "\nvs\n"
        << c->ToString();
    // Well-defined states never decrease.
    auto before = rollback::BuildSdgForProgram(p.value());
    auto after = rollback::BuildSdgForProgram(c.value());
    EXPECT_GE(after.WellDefinedStates().size(),
              before.WellDefinedStates().size());
  }
  EXPECT_GT(improved, 30u);  // the scattered pattern leaves plenty to fix
}

TEST(ClusterWritesTest, HandlesExplicitUnlocksAndCommit) {
  storage::EntityStore store;
  auto ids = store.CreateMany(3);
  ProgramBuilder b("u", 2);
  b.LockExclusive(ids[0])
      .Read(ids[0], 0)
      .LockExclusive(ids[1])
      .WriteVar(ids[0], 0)
      .Read(ids[1], 1)
      .Unlock(ids[0])
      .WriteVar(ids[1], 1)
      .Unlock(ids[1])
      .Commit();
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  auto c = ClusterWrites(p.value());
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->ops().back().code, OpCode::kCommit);
  EXPECT_EQ(RunSolo(p.value(), 3), RunSolo(c.value(), 3));
}

TEST(ClusterWritesTest, IdempotentOnClusteredInput) {
  storage::EntityStore store;
  auto ids = store.CreateMany(6);
  Program p = sim::MakeFigure5Program(ids);
  ASSERT_EQ(p.WriteSpreadScore(), 0u);
  auto c = ClusterWrites(p);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->WriteSpreadScore(), 0u);
  EXPECT_EQ(RunSolo(p, 6), RunSolo(c.value(), 6));
}

TEST(ClusterWritesTest, EmptyProgram) {
  ProgramBuilder b("empty", 0);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  auto c = ClusterWrites(p.value());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), 0u);
}

}  // namespace
}  // namespace pardb::txn

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "rollback/mcs_strategy.h"
#include "rollback/sdg_strategy.h"
#include "rollback/strategy.h"
#include "rollback/total_restart.h"
#include "txn/program.h"

namespace pardb::rollback {
namespace {

using lock::LockMode;
using txn::Program;
using txn::ProgramBuilder;

Program TwoVarProgram() {
  // A placeholder program: strategies only use num_vars/initial_vars.
  ProgramBuilder b("p", 2);
  b.InitVar(0, 10).InitVar(1, 20);
  b.LockExclusive(EntityId(0));
  b.Commit();
  auto p = b.Build();
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

// ---------------------------------------------------------------------------
// Reference harness: drives a strategy through a scripted execution while
// snapshotting the ground-truth values at every lock state, then checks
// restoration against the snapshots.
// ---------------------------------------------------------------------------

struct RefSnapshot {
  std::vector<Value> vars;
  std::map<EntityId, Value> entity_values;  // X-held entities only
  std::vector<EntityId> held;               // in lock order
};

class Harness {
 public:
  explicit Harness(StrategyKind kind) : program_(MakeProgram()) {
    strategy_ = MakeStrategy(kind, program_);
    vars_ = program_.initial_vars();
    // Lock state 0 snapshot (before the first request).
    SnapshotNow();
  }

  static Program MakeProgram() {
    ProgramBuilder b("harness", 3);
    b.InitVar(0, 1).InitVar(1, 2).InitVar(2, 3);
    b.LockExclusive(EntityId(0));
    b.Commit();
    auto p = b.Build();
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  }

  void Lock(EntityId e, Value global) {
    const LockIndex ls = lock_count_;
    strategy_->OnLockGranted(ls, e, LockMode::kExclusive, global, false);
    entities_[e] = global;
    held_.push_back(e);
    ++lock_count_;
    SnapshotNow();  // snapshot for the *next* lock state happens before the
                    // next request; see Advance().
  }

  // Writes happen at the current lock index (= lock_count_).
  void WriteEntity(EntityId e, Value v) {
    strategy_->OnEntityWrite(e, v, lock_count_);
    entities_[e] = v;
    snapshots_.back() = CurrentState();  // lock state includes these writes
  }
  void WriteVar(txn::VarId var, Value v) {
    strategy_->OnVarWrite(var, v, lock_count_);
    vars_[var] = v;
    snapshots_.back() = CurrentState();
  }

  // Ground truth at lock state q.
  const RefSnapshot& Snapshot(LockIndex q) const { return snapshots_[q]; }

  RollbackStrategy& strategy() { return *strategy_; }
  LockIndex lock_count() const { return lock_count_; }

  // Verifies every strategy-visible value equals the reference at state q.
  void ExpectMatches(LockIndex q) {
    const RefSnapshot& ref = Snapshot(q);
    for (txn::VarId v = 0; v < ref.vars.size(); ++v) {
      EXPECT_EQ(strategy_->VarValue(v), ref.vars[v]) << "var " << v
                                                     << " at state " << q;
    }
    for (const auto& [e, val] : ref.entity_values) {
      auto local = strategy_->LocalValue(e);
      ASSERT_TRUE(local.has_value()) << "entity " << e << " at state " << q;
      EXPECT_EQ(*local, val) << "entity " << e << " at state " << q;
    }
  }

 private:
  RefSnapshot CurrentState() const {
    RefSnapshot s;
    s.vars = vars_;
    s.entity_values = entities_;
    s.held = held_;
    return s;
  }
  void SnapshotNow() { snapshots_.push_back(CurrentState()); }

  Program program_;
  std::unique_ptr<RollbackStrategy> strategy_;
  std::vector<Value> vars_;
  std::map<EntityId, Value> entities_;
  std::vector<EntityId> held_;
  LockIndex lock_count_ = 0;
  std::vector<RefSnapshot> snapshots_;  // snapshots_[q] = lock state q
};

// ---------------------------------------------------------------------------
// TotalRestartStrategy
// ---------------------------------------------------------------------------

TEST(TotalRestartTest, OnlyStateZeroRestorable) {
  Program p = TwoVarProgram();
  TotalRestartStrategy s(p);
  EXPECT_EQ(s.LatestRestorableAtOrBefore(5), 0u);
  EXPECT_EQ(s.LatestRestorableAtOrBefore(0), 0u);
}

TEST(TotalRestartTest, RestoreResetsVarsAndDropsEntities) {
  Program p = TwoVarProgram();
  TotalRestartStrategy s(p);
  s.OnLockGranted(0, EntityId(1), LockMode::kExclusive, 100, false);
  s.OnEntityWrite(EntityId(1), 111, 1);
  s.OnVarWrite(0, 99, 1);
  EXPECT_EQ(s.VarValue(0), 99);
  EXPECT_EQ(s.LocalValue(EntityId(1)), std::optional<Value>(111));

  EXPECT_EQ(s.RestoreTo(3).status().code(), StatusCode::kInvalidArgument);
  auto r = s.RestoreTo(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().dropped_entities, std::vector<EntityId>{EntityId(1)});
  EXPECT_EQ(s.VarValue(0), 10);  // initial
  EXPECT_EQ(s.VarValue(1), 20);
  EXPECT_FALSE(s.LocalValue(EntityId(1)).has_value());
}

TEST(TotalRestartTest, UnlockPublishesFinalValueAndForbidsRollback) {
  Program p = TwoVarProgram();
  TotalRestartStrategy s(p);
  s.OnLockGranted(0, EntityId(1), LockMode::kExclusive, 100, false);
  s.OnEntityWrite(EntityId(1), 123, 1);
  EXPECT_EQ(s.OnUnlock(EntityId(1)), std::optional<Value>(123));
  EXPECT_EQ(s.RestoreTo(0).status().code(), StatusCode::kFailedPrecondition);
}

TEST(TotalRestartTest, SharedLockPublishesNothing) {
  Program p = TwoVarProgram();
  TotalRestartStrategy s(p);
  s.OnLockGranted(0, EntityId(1), LockMode::kShared, 100, false);
  EXPECT_FALSE(s.LocalValue(EntityId(1)).has_value());
  EXPECT_FALSE(s.OnUnlock(EntityId(1)).has_value());
}

TEST(TotalRestartTest, SpaceIsOneCopyPerExclusiveEntity) {
  Program p = TwoVarProgram();
  TotalRestartStrategy s(p);
  s.OnLockGranted(0, EntityId(1), LockMode::kExclusive, 1, false);
  s.OnLockGranted(1, EntityId(2), LockMode::kExclusive, 2, false);
  s.OnLockGranted(2, EntityId(3), LockMode::kShared, 3, false);
  s.OnEntityWrite(EntityId(1), 7, 1);
  s.OnEntityWrite(EntityId(1), 8, 2);
  SpaceStats stats = s.Space();
  EXPECT_EQ(stats.entity_copies, 2u);  // writes do not add copies
  EXPECT_EQ(stats.var_copies, 2u);     // saved initial vars
}

// ---------------------------------------------------------------------------
// McsStrategy
// ---------------------------------------------------------------------------

TEST(McsTest, EveryLockStateRestorable) {
  Harness h(StrategyKind::kMcs);
  h.Lock(EntityId(0), 100);  // lock state 0
  h.WriteEntity(EntityId(0), 101);
  h.WriteVar(0, 11);
  h.Lock(EntityId(1), 200);  // lock state 1
  h.WriteEntity(EntityId(0), 102);
  h.WriteEntity(EntityId(1), 201);
  h.Lock(EntityId(2), 300);  // lock state 2
  h.WriteVar(1, 22);
  h.WriteEntity(EntityId(2), 301);

  for (LockIndex q = 0; q <= 3; ++q) {
    EXPECT_EQ(h.strategy().LatestRestorableAtOrBefore(q), q);
  }

  // Restore to lock state 2: entity 2's lock (request 3, lock state 2) is
  // undone; writes after lock state 2 vanish.
  auto r = h.strategy().RestoreTo(2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().dropped_entities, std::vector<EntityId>{EntityId(2)});
  h.ExpectMatches(2);

  // Restore further back to state 1.
  auto r1 = h.strategy().RestoreTo(1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().dropped_entities, std::vector<EntityId>{EntityId(1)});
  h.ExpectMatches(1);

  // And to state 0 (total).
  auto r0 = h.strategy().RestoreTo(0);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0.value().dropped_entities, std::vector<EntityId>{EntityId(0)});
  h.ExpectMatches(0);
}

TEST(McsTest, SameLockIndexWritesOverwriteTop) {
  Harness h(StrategyKind::kMcs);
  h.Lock(EntityId(0), 100);
  auto* mcs = dynamic_cast<McsStrategy*>(&h.strategy());
  ASSERT_NE(mcs, nullptr);
  EXPECT_EQ(mcs->StackDepth(EntityId(0)), 1u);  // saved global value
  h.WriteEntity(EntityId(0), 101);
  EXPECT_EQ(mcs->StackDepth(EntityId(0)), 2u);
  h.WriteEntity(EntityId(0), 102);  // same lock index: overwrite, no push
  EXPECT_EQ(mcs->StackDepth(EntityId(0)), 2u);
  h.Lock(EntityId(1), 200);
  h.WriteEntity(EntityId(0), 103);  // new lock index: push
  EXPECT_EQ(mcs->StackDepth(EntityId(0)), 3u);
}

TEST(McsTest, UnlockPublishesTopOfStack) {
  Harness h(StrategyKind::kMcs);
  h.Lock(EntityId(0), 100);
  h.WriteEntity(EntityId(0), 150);
  EXPECT_EQ(h.strategy().OnUnlock(EntityId(0)), std::optional<Value>(150));
  EXPECT_EQ(h.strategy().RestoreTo(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(McsTest, RandomizedRestorationMatchesReference) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    Harness h(StrategyKind::kMcs);
    std::vector<EntityId> locked;
    const int locks = 2 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < locks; ++i) {
      EntityId e(static_cast<std::uint64_t>(i));
      h.Lock(e, static_cast<Value>(rng.Uniform(1000)));
      locked.push_back(e);
      const int writes = static_cast<int>(rng.Uniform(4));
      for (int w = 0; w < writes; ++w) {
        EntityId target = locked[rng.Uniform(locked.size())];
        h.WriteEntity(target, static_cast<Value>(rng.Uniform(1000)));
        if (rng.Bernoulli(0.5)) {
          h.WriteVar(static_cast<txn::VarId>(rng.Uniform(3)),
                     static_cast<Value>(rng.Uniform(1000)));
        }
      }
    }
    const LockIndex target = rng.Uniform(h.lock_count() + 1);
    auto r = h.strategy().RestoreTo(target);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    h.ExpectMatches(target);
  }
}

TEST(McsTest, Theorem3Bound) {
  // n(n+1)/2 entity copies with monitoring stopped at the last lock: write
  // every held entity between every pair of lock requests — the worst case.
  constexpr int kN = 12;
  Harness h(StrategyKind::kMcs);
  for (int i = 0; i < kN; ++i) {
    h.Lock(EntityId(static_cast<std::uint64_t>(i)), i);
    if (i == kN - 1) h.strategy().OnLastLockGranted();
    for (int j = 0; j <= i; ++j) {
      h.WriteEntity(EntityId(static_cast<std::uint64_t>(j)), 100 * i + j);
    }
  }
  SpaceStats stats = h.strategy().Space();
  // Entity j's stack: saved global + one element per later lock state.
  EXPECT_LE(stats.entity_copies, static_cast<std::size_t>(kN * (kN + 1) / 2));
  // The pattern above attains the bound exactly.
  EXPECT_EQ(stats.entity_copies, static_cast<std::size_t>(kN * (kN + 1) / 2));
  // Var copies bounded by n * |L| (3 vars, untouched here).
  EXPECT_LE(stats.var_copies, static_cast<std::size_t>(kN * 3));
}

TEST(McsTest, MonitoringStopSavesCopies) {
  Harness with(StrategyKind::kMcs);
  with.Lock(EntityId(0), 1);
  with.Lock(EntityId(1), 2);
  with.strategy().OnLastLockGranted();
  with.WriteEntity(EntityId(0), 5);
  with.WriteEntity(EntityId(0), 6);
  auto* mcs = dynamic_cast<McsStrategy*>(&with.strategy());
  EXPECT_EQ(mcs->StackDepth(EntityId(0)), 1u);  // only the current value
  EXPECT_EQ(*with.strategy().LocalValue(EntityId(0)), 6);
}

// ---------------------------------------------------------------------------
// SdgStrategy
// ---------------------------------------------------------------------------

TEST(SdgStrategyTest, ScatteredWritesCoarsenRollback) {
  Harness h(StrategyKind::kSdg);
  h.Lock(EntityId(0), 100);   // state 0
  h.WriteEntity(EntityId(0), 101);  // first write of E0 @1, u=0
  h.Lock(EntityId(1), 200);   // state 1
  h.Lock(EntityId(2), 300);   // state 2
  h.WriteEntity(EntityId(0), 102);  // E0 again @3: destroys states 1,2

  EXPECT_EQ(h.strategy().LatestRestorableAtOrBefore(3), 3u);
  EXPECT_EQ(h.strategy().LatestRestorableAtOrBefore(2), 0u);  // 1,2 undefined
  EXPECT_EQ(h.strategy().LatestRestorableAtOrBefore(1), 0u);
  EXPECT_EQ(h.strategy().LatestRestorableAtOrBefore(0), 0u);

  EXPECT_EQ(h.strategy().RestoreTo(2).status().code(),
            StatusCode::kInvalidArgument);
  auto r = h.strategy().RestoreTo(0);
  ASSERT_TRUE(r.ok());
  h.ExpectMatches(0);
}

TEST(SdgStrategyTest, ClusteredWritesKeepAllStates) {
  Harness h(StrategyKind::kSdg);
  h.Lock(EntityId(0), 100);
  h.WriteEntity(EntityId(0), 101);
  h.WriteEntity(EntityId(0), 102);  // same lock index: no straddle
  h.Lock(EntityId(1), 200);
  h.WriteEntity(EntityId(1), 201);
  h.Lock(EntityId(2), 300);
  for (LockIndex q = 0; q <= 3; ++q) {
    EXPECT_EQ(h.strategy().LatestRestorableAtOrBefore(q), q) << q;
  }
  auto r = h.strategy().RestoreTo(2);
  ASSERT_TRUE(r.ok());
  h.ExpectMatches(2);
  auto r1 = h.strategy().RestoreTo(1);
  ASSERT_TRUE(r1.ok());
  h.ExpectMatches(1);
}

TEST(SdgStrategyTest, KeptEntityRevertsToGlobalWhenAllWritesUndone) {
  Harness h(StrategyKind::kSdg);
  h.Lock(EntityId(0), 100);  // state 0
  h.Lock(EntityId(1), 200);  // state 1
  h.WriteEntity(EntityId(0), 111);  // first write @2 — u=1, no straddle
  auto r = h.strategy().RestoreTo(1);
  ASSERT_TRUE(r.ok());
  // E0 still locked (lock state 0 < 1) but its write is undone: the single
  // copy reverts to the global value.
  EXPECT_EQ(h.strategy().LocalValue(EntityId(0)), std::optional<Value>(100));
  h.ExpectMatches(1);
}

TEST(SdgStrategyTest, VarWritesDestroyStatesToo) {
  Harness h(StrategyKind::kSdg);
  h.Lock(EntityId(0), 100);  // state 0
  h.WriteVar(0, 5);          // first var write @1, u=0
  h.Lock(EntityId(1), 200);  // state 1
  h.Lock(EntityId(2), 300);  // state 2
  h.WriteVar(0, 6);          // @3: destroys 1,2
  EXPECT_EQ(h.strategy().LatestRestorableAtOrBefore(2), 0u);
  auto r = h.strategy().RestoreTo(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(h.strategy().VarValue(0), 1);  // initial value from harness
  h.ExpectMatches(0);
}

TEST(SdgStrategyTest, RandomizedWellDefinedRestorationMatchesReference) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    Harness h(StrategyKind::kSdg);
    std::vector<EntityId> locked;
    const int locks = 2 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < locks; ++i) {
      EntityId e(static_cast<std::uint64_t>(i));
      h.Lock(e, static_cast<Value>(rng.Uniform(1000)));
      locked.push_back(e);
      const int writes = static_cast<int>(rng.Uniform(3));
      for (int w = 0; w < writes; ++w) {
        EntityId target = locked[rng.Uniform(locked.size())];
        h.WriteEntity(target, static_cast<Value>(rng.Uniform(1000)));
      }
    }
    const LockIndex wanted = rng.Uniform(h.lock_count() + 1);
    const LockIndex target = h.strategy().LatestRestorableAtOrBefore(wanted);
    EXPECT_LE(target, wanted);
    auto r = h.strategy().RestoreTo(target);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    h.ExpectMatches(target);
  }
}

TEST(SdgStrategyTest, SpaceStaysSingleCopy) {
  Harness h(StrategyKind::kSdg);
  h.Lock(EntityId(0), 1);
  h.Lock(EntityId(1), 2);
  for (int i = 0; i < 10; ++i) {
    h.WriteEntity(EntityId(0), i);
    h.WriteEntity(EntityId(1), i);
  }
  SpaceStats s = h.strategy().Space();
  EXPECT_EQ(s.entity_copies, 2u);  // one local copy per X entity, always
  EXPECT_EQ(s.var_copies, 3u);
  EXPECT_GT(s.metadata_entries, 0u);  // the SDG write log is metadata
}

TEST(StrategyFactoryTest, MakesAllKinds) {
  Program p = TwoVarProgram();
  EXPECT_EQ(MakeStrategy(StrategyKind::kTotalRestart, p)->name(),
            "total-restart");
  EXPECT_EQ(MakeStrategy(StrategyKind::kMcs, p)->name(), "mcs");
  EXPECT_EQ(MakeStrategy(StrategyKind::kSdg, p)->name(), "sdg");
  EXPECT_EQ(StrategyKindName(StrategyKind::kMcs), "mcs");
  EXPECT_EQ(StrategyKindName(StrategyKind::kSdg), "sdg");
  EXPECT_EQ(StrategyKindName(StrategyKind::kTotalRestart), "total-restart");
}

}  // namespace
}  // namespace pardb::rollback

// D14 decision journal: the bounded ring with counted eviction, the
// FNV-chained epoch checksums and their invariance across worker counts
// and schedulers, first-divergence diagnosis (checksum bisection + record
// diff) on injected victim flips and perturbed state digests, the on-disk
// round trip, and the determinism contract (journaling never enters the
// byte-compared report JSON).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/journal.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "par/report_json.h"
#include "par/sharded_driver.h"
#include "sim/driver.h"

namespace pardb {
namespace {

using obs::DecisionJournal;
using obs::DiffJournals;
using obs::DivergenceReport;
using obs::EpochKind;
using obs::EpochStamp;
using obs::FirstDivergentEpoch;
using obs::JournalData;
using obs::JournalKind;
using obs::JournalRecord;
using obs::kNoDivergence;
using obs::ReadJournalFile;

// ---------------------------------------------------------------------------
// Ring, chain and metrics mechanics.
// ---------------------------------------------------------------------------

TEST(JournalRingTest, BoundedRingEvictsOldestAndCountsDrops) {
  DecisionJournal j(DecisionJournal::Options{/*ring_capacity=*/4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    j.OnAdmit(TxnId(i), /*step=*/i);
  }
  EXPECT_EQ(j.total_records(), 10u);
  EXPECT_EQ(j.dropped_records(), 6u);
  const std::vector<JournalRecord> kept = j.RetainedRecords();
  ASSERT_EQ(kept.size(), 4u);
  // Oldest-first: the survivors are the last four appends.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].txn, 6u + i);
    EXPECT_EQ(static_cast<JournalKind>(kept[i].kind), JournalKind::kAdmit);
  }
}

TEST(JournalRingTest, UnboundedModeNeverDrops) {
  DecisionJournal j(DecisionJournal::Options{/*ring_capacity=*/0});
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    j.OnGrant(TxnId(i % 7), i, EntityId(i % 13), (i & 1) != 0, false);
  }
  EXPECT_EQ(j.total_records(), 100'000u);
  EXPECT_EQ(j.dropped_records(), 0u);
  EXPECT_EQ(j.RetainedRecords().size(), 100'000u);
}

TEST(JournalRingTest, MetricsCountRecordsEpochsDropsAndBytes) {
  obs::MetricsRegistry registry;
  DecisionJournal j(DecisionJournal::Options{/*ring_capacity=*/2});
  j.AttachMetrics(&registry, {{obs::kShardLabel, "0"}});
  j.OnAdmit(TxnId(0), 0);
  j.OnBlock(TxnId(0), 1, EntityId(3));
  j.OnCommit(TxnId(0), 2, 5);  // evicts the admit
  j.StampEpoch(2, /*state_digest=*/42);
  const std::string prom = registry.Snapshot().ToPrometheus();
  EXPECT_NE(prom.find("pardb_journal_records_total{shard=\"0\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("pardb_journal_epochs_total{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("pardb_journal_dropped_total{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("pardb_journal_bytes_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_EQ(j.bytes_logged(),
            3 * sizeof(JournalRecord) + sizeof(EpochStamp));
}

TEST(JournalChainTest, ChainLinksFoldStateAndRecords) {
  // Two journals with identical appends and stamps must agree link by
  // link; changing one record flips the chain from that epoch onward.
  auto build = [](std::uint64_t entity) {
    DecisionJournal j;
    j.OnAdmit(TxnId(1), 0);
    j.StampEpoch(10, 111);
    j.OnBlock(TxnId(1), 12, EntityId(entity));
    j.StampEpoch(20, 222);
    j.OnCommit(TxnId(1), 25, 3);
    j.StampEpoch(30, 333);
    return j.ChainValues();
  };
  const auto a = build(5);
  const auto b = build(5);
  const auto c = build(6);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(a[0], c[0]);  // record lands in epoch 1, epoch 0 still agrees
  EXPECT_NE(a[1], c[1]);
  EXPECT_NE(a[2], c[2]);  // a chain divergence never heals
}

// ---------------------------------------------------------------------------
// Checksum bisection (FirstDivergentEpoch) unit tests.
// ---------------------------------------------------------------------------

std::vector<EpochStamp> StampsFromChains(
    const std::vector<std::uint64_t>& chains) {
  std::vector<EpochStamp> out;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    EpochStamp s;
    s.epoch = i;
    s.chain = chains[i];
    out.push_back(s);
  }
  return out;
}

TEST(JournalBisectTest, IdenticalChainsReportNoDivergence) {
  const auto a = StampsFromChains({10, 20, 30, 40});
  EXPECT_EQ(FirstDivergentEpoch(a, a), kNoDivergence);
}

TEST(JournalBisectTest, FindsFirstDifferingLinkAtEveryPosition) {
  const std::vector<std::uint64_t> base = {10, 20, 30, 40, 50, 60, 70};
  const auto a = StampsFromChains(base);
  for (std::size_t flip = 0; flip < base.size(); ++flip) {
    // Chains are cumulative, so a real divergence at `flip` corrupts every
    // later link too.
    auto mutated = base;
    for (std::size_t i = flip; i < mutated.size(); ++i) mutated[i] ^= 0xdead;
    EXPECT_EQ(FirstDivergentEpoch(a, StampsFromChains(mutated)), flip);
  }
}

TEST(JournalBisectTest, PrefixChainsDivergeAtTheMissingEpoch) {
  const auto a = StampsFromChains({10, 20, 30, 40});
  const auto b = StampsFromChains({10, 20});
  EXPECT_EQ(FirstDivergentEpoch(a, b), 2u);
  EXPECT_EQ(FirstDivergentEpoch(b, a), 2u);
}

// ---------------------------------------------------------------------------
// Sim-level chain stability and injected divergences.
// ---------------------------------------------------------------------------

sim::SimOptions JournaledSim(std::uint64_t seed) {
  sim::SimOptions opt;
  opt.total_txns = 80;
  opt.concurrency = 10;
  opt.workload.num_entities = 12;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.seed = seed;
  // A short epoch period so the small run still stamps several epochs.
  opt.engine.journal_epoch_steps = 256;
  return opt;
}

TEST(JournalSimTest, SameSeedSameChainDifferentSeedDifferentChain) {
  auto a = sim::RunSimulation(JournaledSim(7));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = sim::RunSimulation(JournaledSim(7));
  ASSERT_TRUE(b.ok());
  auto c = sim::RunSimulation(JournaledSim(8));
  ASSERT_TRUE(c.ok());
  ASSERT_GE(a->journal_chain.size(), 3u) << "too few epochs to be meaningful";
  EXPECT_EQ(a->journal_chain, b->journal_chain);
  EXPECT_GT(a->journal_records, 0u);
  EXPECT_EQ(a->journal_records, b->journal_records);
  EXPECT_NE(a->journal_chain, c->journal_chain);
}

TEST(JournalSimTest, PerturbedOmegaOrderFlipsChainAtExactlyThatEpoch) {
  // The journal test hook XORs the perturbed epoch's state digest —
  // simulating lock-table / ω-order drift with no divergent decision. The
  // chain must flip at exactly that epoch and stay flipped.
  auto clean = sim::RunSimulation(JournaledSim(7));
  ASSERT_TRUE(clean.ok());
  const std::size_t epochs = clean->journal_chain.size();
  ASSERT_GE(epochs, 3u);
  const std::uint64_t target = 2;
  auto opt = JournaledSim(7);
  opt.journal_perturb_epoch = target;
  auto drift = sim::RunSimulation(opt);
  ASSERT_TRUE(drift.ok());
  ASSERT_EQ(drift->journal_chain.size(), epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    if (e < target) {
      EXPECT_EQ(clean->journal_chain[e], drift->journal_chain[e]) << e;
    } else {
      EXPECT_NE(clean->journal_chain[e], drift->journal_chain[e]) << e;
    }
  }
}

TEST(JournalSimTest, ReportStringIdenticalWithJournalOnAndOff) {
  // The journal is observation-only: disabling it must not change a single
  // decision, and journaling must stay out of the golden-compared report.
  auto on = sim::RunSimulation(JournaledSim(7));
  ASSERT_TRUE(on.ok());
  auto opt = JournaledSim(7);
  opt.journal = false;
  auto off = sim::RunSimulation(opt);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(on->ToString(), off->ToString());
  EXPECT_TRUE(off->journal_chain.empty());
  EXPECT_GT(on->journal_records, 0u);
}

TEST(JournalDiffTest, InjectedVictimFlipIsPinnedToItsDecisionRecord) {
  const std::string dir = ::testing::TempDir();
  auto opt = JournaledSim(7);
  opt.journal_out = dir + "jrnl_clean";
  auto clean = sim::RunSimulation(opt);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  auto flipped_opt = JournaledSim(7);
  flipped_opt.journal_out = dir + "jrnl_flip";
  // Flip the second flippable single-cycle victim decision.
  flipped_opt.engine.debug_flip_victim_deadlock = 2;
  auto flipped = sim::RunSimulation(flipped_opt);
  ASSERT_TRUE(flipped.ok());
  ASSERT_NE(clean->journal_chain, flipped->journal_chain)
      << "flip hook produced no divergence — no flippable deadlock?";

  auto a = ReadJournalFile(dir + "jrnl_clean");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = ReadJournalFile(dir + "jrnl_flip");
  ASSERT_TRUE(b.ok());

  const DivergenceReport d = DiffJournals(a.value(), b.value());
  ASSERT_TRUE(d.diverged);
  EXPECT_FALSE(d.state_only);
  ASSERT_TRUE(d.has_record_a);
  ASSERT_TRUE(d.has_record_b);
  // The first divergent decision IS the victim choice: same kind and step
  // on both sides, different victim.
  EXPECT_EQ(static_cast<JournalKind>(d.record_a.kind), JournalKind::kVictim);
  EXPECT_EQ(static_cast<JournalKind>(d.record_b.kind), JournalKind::kVictim);
  EXPECT_EQ(d.record_a.step, d.record_b.step);
  EXPECT_NE(d.record_a, d.record_b);
  // The divergent epoch really is the first chain mismatch.
  EXPECT_EQ(d.epoch, FirstDivergentEpoch(a->stamps, b->stamps));
  // The rendered report names the epoch, the record and both sides.
  const std::string text =
      obs::RenderDivergence(d, /*shard=*/0, "clean", "flip");
  EXPECT_NE(text.find("FIRST DIVERGENCE at epoch"), std::string::npos);
  EXPECT_NE(text.find("victim"), std::string::npos);
  EXPECT_NE(text.find("clean:"), std::string::npos);
  EXPECT_NE(text.find("flip:"), std::string::npos);
}

TEST(JournalDiffTest, StateOnlyDriftDiagnosedWithoutDivergentRecord) {
  const std::string dir = ::testing::TempDir();
  auto opt = JournaledSim(9);
  opt.journal_out = dir + "jrnl_base";
  ASSERT_TRUE(sim::RunSimulation(opt).ok());
  auto drift_opt = JournaledSim(9);
  drift_opt.journal_out = dir + "jrnl_drift";
  drift_opt.journal_perturb_epoch = 1;
  ASSERT_TRUE(sim::RunSimulation(drift_opt).ok());

  auto a = ReadJournalFile(dir + "jrnl_base");
  ASSERT_TRUE(a.ok());
  auto b = ReadJournalFile(dir + "jrnl_drift");
  ASSERT_TRUE(b.ok());
  const DivergenceReport d = DiffJournals(a.value(), b.value());
  ASSERT_TRUE(d.diverged);
  EXPECT_TRUE(d.state_only);
  EXPECT_EQ(d.epoch, 1u);
  EXPECT_NE(d.state_a, d.state_b);
}

TEST(JournalFileTest, WriteReadRoundTripPreservesEverything) {
  const std::string path = ::testing::TempDir() + "jrnl_roundtrip";
  DecisionJournal j;
  j.OnAdmit(TxnId(3), 1);
  j.OnGrant(TxnId(3), 2, EntityId(9), /*exclusive=*/true, /*upgrade=*/false);
  j.StampEpoch(5, 777);
  j.OnVictim(TxnId(4), 6, /*target=*/2, /*cost=*/11,
             /*omega_constrained=*/true, /*is_requester=*/false,
             /*candidates=*/3);
  j.StampEpoch(10, 888, EpochKind::kTwoPC);
  ASSERT_TRUE(j.WriteFile(path, /*shard=*/5, /*seed=*/1234).ok());

  auto data = ReadJournalFile(path);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->shard, 5u);
  EXPECT_EQ(data->seed, 1234u);
  EXPECT_EQ(data->base_ordinal, 0u);
  EXPECT_EQ(data->total_records, 3u);
  EXPECT_EQ(data->dropped, 0u);
  ASSERT_EQ(data->records.size(), 3u);
  ASSERT_EQ(data->stamps.size(), 2u);
  EXPECT_EQ(data->records, j.RetainedRecords());
  EXPECT_EQ(data->stamps[0], j.stamps()[0]);
  EXPECT_EQ(data->stamps[1], j.stamps()[1]);
  EXPECT_EQ(static_cast<EpochKind>(data->stamps[1].kind), EpochKind::kTwoPC);
}

// ---------------------------------------------------------------------------
// Sharded chain stability: workers {1, 4, 7} x both schedulers.
// ---------------------------------------------------------------------------

par::ShardedOptions JournaledSharded(std::uint64_t seed) {
  par::ShardedOptions opt;
  opt.xshard = par::XShardMode::kReplica;
  opt.num_shards = 4;
  opt.workload.num_entities = 64;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.cross_shard_fraction = 0.2;
  opt.concurrency = 8;
  opt.total_txns = 160;
  opt.seed = seed;
  opt.engine.scheduler = core::SchedulerKind::kRandom;
  opt.engine.journal_epoch_steps = 256;
  return opt;
}

std::vector<std::vector<std::uint64_t>> ShardChains(
    const par::ShardedReport& rep) {
  std::vector<std::vector<std::uint64_t>> chains;
  for (const par::ShardResult& s : rep.shards) {
    EXPECT_EQ(s.journal_dropped, 0u);
    chains.push_back(s.journal_chain);
  }
  return chains;
}

TEST(JournalShardedTest, ChainsInvariantAcrossWorkerCountsAndSchedulers) {
  // The epoch chain is keyed to each engine's own step counter, so neither
  // the worker count nor the quantum structure of the scheduler may move a
  // single stamp. This is the hierarchical-comparison precondition: chains
  // from ANY two runs of a seed are comparable.
  auto base = par::RunSharded(JournaledSharded(11));
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const auto want = ShardChains(base.value());
  std::size_t epochs = 0;
  for (const auto& c : want) epochs += c.size();
  ASSERT_GT(epochs, 0u) << "no epochs stamped — period too long for the run?";

  for (std::size_t workers : {1u, 4u, 7u}) {
    for (par::ShardScheduler sched :
         {par::ShardScheduler::kTimeSlice,
          par::ShardScheduler::kRunToCompletion}) {
      auto opt = JournaledSharded(11);
      opt.num_threads = workers;
      opt.scheduler = sched;
      auto rep = par::RunSharded(opt);
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      EXPECT_EQ(ShardChains(rep.value()), want)
          << "workers=" << workers << " scheduler="
          << (sched == par::ShardScheduler::kTimeSlice ? "timeslice" : "rtc");
    }
  }
}

TEST(JournalShardedTest, ReportJsonByteIdenticalWithJournalOnAndOff) {
  auto on_opt = JournaledSharded(13);
  auto on = par::RunSharded(on_opt);
  ASSERT_TRUE(on.ok());
  auto off_opt = JournaledSharded(13);
  off_opt.journal = false;
  auto off = par::RunSharded(off_opt);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(par::ShardedReportToJson(on.value()),
            par::ShardedReportToJson(off.value()));
}

TEST(JournalShardedTest, LocksModeCoordinatorChainIsDeterministic) {
  auto opt = JournaledSharded(17);
  opt.xshard = par::XShardMode::kLocks;
  opt.total_txns = 120;
  auto a = par::RunSharded(opt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_FALSE(a->coord_journal_chain.empty())
      << "locks mode must stamp 2PC epochs on the coordinator journal";
  auto wopt = opt;
  wopt.num_threads = 1;
  auto b = par::RunSharded(wopt);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->coord_journal_chain, b->coord_journal_chain);
  EXPECT_EQ(ShardChains(a.value()), ShardChains(b.value()));
}

}  // namespace
}  // namespace pardb

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace pardb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Deadlock("cycle of length 3");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDeadlock());
  EXPECT_EQ(s.code(), StatusCode::kDeadlock);
  EXPECT_EQ(s.message(), "cycle of length 3");
  EXPECT_EQ(s.ToString(), "Deadlock: cycle of length 3");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ProtocolViolation("x").code(),
            StatusCode::kProtocolViolation);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

Status FailsThenPropagates() {
  PARDB_RETURN_IF_ERROR(Status::NotFound("inner"));
  return Status::Internal("should not reach");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(), Status::NotFound("inner"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  PARDB_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_TRUE(Doubled(Status::Internal("x")).status().code() ==
              StatusCode::kInternal);
}

TEST(TypedIdTest, DistinctTypesAndValidity) {
  TxnId t(7);
  EntityId e(7);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.value(), 7u);
  EXPECT_FALSE(TxnId().valid());
  EXPECT_FALSE(TxnId::Invalid().valid());
  // Same underlying value, different types: both print with their prefix.
  std::ostringstream os;
  os << t << " " << e;
  EXPECT_EQ(os.str(), "T7 E7");
}

TEST(TypedIdTest, Ordering) {
  EXPECT_LT(TxnId(1), TxnId(2));
  EXPECT_EQ(TxnId(3), TxnId(3));
  EXPECT_NE(TxnId(3), TxnId(4));
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfianTest, UniformWhenThetaZero) {
  Rng rng(1);
  ZipfianGenerator z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[z.Next(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfianTest, SkewFavorsSmallRanks) {
  Rng rng(2);
  ZipfianGenerator z(100, 0.9);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t v = z.Next(rng);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Rank 0 should dominate the tail decisively.
  EXPECT_GT(counts[0], counts[50] * 5);
}

Result<Flags> ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsAndSpaceForms) {
  auto f = ParseArgs({"--a=1", "--b", "2", "--c"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetInt("a", 0).value(), 1);
  EXPECT_EQ(f->GetInt("b", 0).value(), 2);
  EXPECT_TRUE(f->GetBool("c"));
  EXPECT_FALSE(f->GetBool("missing"));
}

TEST(FlagsTest, PositionalArguments) {
  auto f = ParseArgs({"run", "--x=3", "file.txt"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->positional(),
            (std::vector<std::string>{"run", "file.txt"}));
}

TEST(FlagsTest, Defaults) {
  auto f = ParseArgs({});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetString("name", "dflt"), "dflt");
  EXPECT_EQ(f->GetInt("n", 7).value(), 7);
  EXPECT_EQ(f->GetDouble("d", 1.5).value(), 1.5);
}

TEST(FlagsTest, TypeErrors) {
  auto f = ParseArgs({"--n=abc", "--d=xyz"});
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->GetInt("n", 0).ok());
  EXPECT_FALSE(f->GetDouble("d", 0).ok());
}

TEST(FlagsTest, BareDoubleDashRejected) {
  auto f = ParseArgs({"--"});
  EXPECT_FALSE(f.ok());
}

TEST(FlagsTest, UnusedFlagsReported) {
  auto f = ParseArgs({"--used=1", "--typo=2"});
  ASSERT_TRUE(f.ok());
  (void)f->GetInt("used", 0);
  EXPECT_EQ(f->UnusedFlags(), std::vector<std::string>{"typo"});
}

TEST(FlagsTest, DoubleValues) {
  auto f = ParseArgs({"--theta=0.99"});
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->GetDouble("theta", 0).value(), 0.99);
}

TEST(BitsTest, RoundUpPowerOfTwo) {
  EXPECT_EQ(RoundUpPowerOfTwo(0), 1u);
  EXPECT_EQ(RoundUpPowerOfTwo(1), 1u);
  EXPECT_EQ(RoundUpPowerOfTwo(2), 2u);
  EXPECT_EQ(RoundUpPowerOfTwo(3), 4u);
  EXPECT_EQ(RoundUpPowerOfTwo(4), 4u);
  EXPECT_EQ(RoundUpPowerOfTwo(5), 8u);
  EXPECT_EQ(RoundUpPowerOfTwo(100), 128u);   // the hub snapshot case
  EXPECT_EQ(RoundUpPowerOfTwo(512), 512u);
  EXPECT_EQ(RoundUpPowerOfTwo(513), 1024u);
  EXPECT_EQ(RoundUpPowerOfTwo(1ULL << 63), 1ULL << 63);
  // Saturates above 2^63: result stays a power of two and result - 1 a
  // valid all-ones mask.
  EXPECT_EQ(RoundUpPowerOfTwo((1ULL << 63) + 1), 1ULL << 63);
  EXPECT_EQ(RoundUpPowerOfTwo(~0ULL), 1ULL << 63);
}

TEST(BitsTest, RoundUpPowerOfTwoIsConstexpr) {
  static_assert(RoundUpPowerOfTwo(100) == 128, "usable as a mask at compile time");
  static_assert((RoundUpPowerOfTwo(100) & (RoundUpPowerOfTwo(100) - 1)) == 0,
                "always a power of two");
}

TEST(LoggingTest, LevelGating) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  PARDB_LOG(Info) << "suppressed";
  PARDB_LOG(Error) << "emitted (expected in test output)";
  SetLogLevel(LogLevel::kWarning);
}

}  // namespace
}  // namespace pardb

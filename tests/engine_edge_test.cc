// Edge cases and secondary engine behaviors: accessors, event caps, option
// toggles, error paths, and cross-checks that the main suites do not cover.

#include <gtest/gtest.h>

#include "analysis/history.h"
#include "core/engine.h"
#include "sim/driver.h"
#include "sim/workload.h"
#include "storage/entity_store.h"
#include "txn/program.h"

namespace pardb::core {
namespace {

using rollback::StrategyKind;
using txn::Operand;
using txn::ProgramBuilder;

txn::Program TwoLock(EntityId e1, EntityId e2, const std::string& name) {
  ProgramBuilder b(name, 1);
  b.LockExclusive(e1).LockExclusive(e2).WriteImm(e2, 1).Commit();
  auto p = b.Build();
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

class EngineEdgeTest : public ::testing::Test {
 protected:
  void Init(EngineOptions options = {}) {
    ids_ = store_.CreateMany(6, 100);
    engine_ = std::make_unique<Engine>(&store_, options);
  }
  storage::EntityStore store_;
  std::unique_ptr<Engine> engine_;
  std::vector<EntityId> ids_;
};

TEST_F(EngineEdgeTest, SpawnNullProgramRejected) {
  Init();
  std::shared_ptr<const txn::Program> null;
  EXPECT_EQ(engine_->Spawn(null).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EngineEdgeTest, AccessorsOnUnknownTxn) {
  Init();
  EXPECT_EQ(engine_->StatusOf(TxnId(99)), TxnStatus::kCommitted);
  EXPECT_EQ(engine_->StateIndexOf(TxnId(99)), 0u);
  EXPECT_EQ(engine_->LockCountOf(TxnId(99)), 0u);
  EXPECT_EQ(engine_->EntryOf(TxnId(99)), 0u);
  EXPECT_EQ(engine_->StrategyOf(TxnId(99)), nullptr);
  EXPECT_EQ(engine_->VarValueOf(TxnId(99), 0), 0);
  EXPECT_EQ(engine_->PreemptionCountOf(TxnId(99)), 0u);
}

TEST_F(EngineEdgeTest, AccessorsTrackProgress) {
  Init();
  auto t = engine_->Spawn(TwoLock(ids_[0], ids_[1], "t"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(engine_->StatusOf(t.value()), TxnStatus::kReady);
  EXPECT_EQ(engine_->EntryOf(t.value()), 0u);
  ASSERT_TRUE(engine_->StepTxn(t.value()).ok());
  EXPECT_EQ(engine_->StateIndexOf(t.value()), 1u);
  EXPECT_EQ(engine_->LockCountOf(t.value()), 1u);
  ASSERT_NE(engine_->StrategyOf(t.value()), nullptr);
  EXPECT_EQ(engine_->StrategyOf(t.value())->name(), "mcs");
}

TEST_F(EngineEdgeTest, RunToCompletionRespectsMaxSteps) {
  Init();
  ASSERT_TRUE(engine_->Spawn(TwoLock(ids_[0], ids_[1], "t")).ok());
  Status s = engine_->RunToCompletion(/*max_steps=*/1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineEdgeTest, DeadlockEventCapRespected) {
  EngineOptions opt;
  opt.max_recorded_events = 1;
  opt.victim_policy = VictimPolicyKind::kMinCostOrdered;
  Init(opt);
  // Several sequential deadlocks; only one event retained.
  for (int round = 0; round < 3; ++round) {
    auto ta = engine_->Spawn(TwoLock(ids_[0], ids_[1], "a"));
    auto tb = engine_->Spawn(TwoLock(ids_[1], ids_[0], "b"));
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    ASSERT_TRUE(engine_->RunToCompletion().ok());
  }
  EXPECT_GE(engine_->metrics().deadlocks, 2u);
  EXPECT_EQ(engine_->deadlock_events().size(), 1u);
}

TEST_F(EngineEdgeTest, LastLockDeclarationReducesMcsCopies) {
  // The same deadlock-free program with and without the §5 declaration:
  // with it, writes after the final lock request keep a single copy.
  auto Run = [&](bool use_declaration) {
    storage::EntityStore store;
    auto ids = store.CreateMany(3, 0);
    EngineOptions opt;
    opt.use_last_lock_declaration = use_declaration;
    Engine engine(&store, opt);
    ProgramBuilder b("p", 1);
    b.LockExclusive(ids[0]).LockExclusive(ids[1]).LockExclusive(ids[2]);
    for (int i = 0; i < 4; ++i) {
      b.WriteImm(ids[0], i).WriteImm(ids[1], i).WriteImm(ids[2], i);
    }
    b.Commit();
    auto p = b.Build();
    EXPECT_TRUE(p.ok());
    auto t = engine.Spawn(std::move(p).value());
    EXPECT_TRUE(t.ok());
    EXPECT_TRUE(engine.RunToCompletion().ok());
    return engine.metrics().max_entity_copies;
  };
  const std::size_t with = Run(true);
  const std::size_t without = Run(false);
  EXPECT_LT(with, without);
  EXPECT_EQ(with, 3u);  // just the three working copies
}

TEST_F(EngineEdgeTest, DumpStateListsTransactionsAndLocks) {
  Init();
  auto t = engine_->Spawn(TwoLock(ids_[0], ids_[1], "t"));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(engine_->StepTxn(t.value()).ok());
  std::string s = engine_->DumpState();
  EXPECT_NE(s.find("T0"), std::string::npos);
  EXPECT_NE(s.find("status=ready"), std::string::npos);
  EXPECT_NE(s.find("E0"), std::string::npos);
}

TEST_F(EngineEdgeTest, RollbackCostDistributionPercentiles) {
  Init();
  EXPECT_EQ(engine_->RollbackCostDistribution().count, 0u);
  auto ta = engine_->Spawn(TwoLock(ids_[0], ids_[1], "a"));
  auto tb = engine_->Spawn(TwoLock(ids_[1], ids_[0], "b"));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  auto d = engine_->RollbackCostDistribution();
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.p50, d.max);
  EXPECT_GT(d.max, 0u);
  EXPECT_GT(d.mean, 0.0);
}

TEST(SimDriverEdgeTest, IncompleteRunReported) {
  // Unconstrained min-cost on the adversarial workload with a tiny step
  // budget: the driver reports completed=false instead of erroring.
  sim::SimOptions opt;
  opt.engine.victim_policy = VictimPolicyKind::kMinCost;
  opt.workload.num_entities = 4;
  opt.workload.min_locks = 3;
  opt.workload.max_locks = 4;
  opt.concurrency = 6;
  opt.total_txns = 1000;
  opt.max_steps = 2000;  // far too few
  opt.seed = 1;
  opt.check_serializability = false;
  auto rep = sim::RunSimulation(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_FALSE(rep->completed);
  EXPECT_LT(rep->committed, 1000u);
  EXPECT_NE(rep->ToString().find("INCOMPLETE"), std::string::npos);
}

TEST(SchedulerTest, RoundRobinAndRandomBothComplete) {
  for (auto kind : {SchedulerKind::kRoundRobin, SchedulerKind::kRandom}) {
    storage::EntityStore store;
    store.CreateMany(4, 0);
    EngineOptions opt;
    opt.scheduler = kind;
    Engine engine(&store, opt);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          engine
              .Spawn(TwoLock(EntityId(i % 2), EntityId((i + 1) % 2),
                             "t" + std::to_string(i)))
              .ok());
    }
    ASSERT_TRUE(engine.RunToCompletion().ok());
    EXPECT_EQ(engine.metrics().commits, 4u);
  }
}

TEST(SharedProgramTest, ManyTransactionsShareOneProgram) {
  // Spawning via shared_ptr avoids copying the program per transaction.
  storage::EntityStore store;
  store.CreateMany(2, 0);
  Engine engine(&store, EngineOptions{});
  ProgramBuilder b("shared", 1);
  b.LockExclusive(EntityId(0)).Read(EntityId(0), 0).WriteVar(EntityId(0), 0);
  b.Commit();
  auto built = b.Build();
  ASSERT_TRUE(built.ok());
  auto shared =
      std::make_shared<const txn::Program>(std::move(built).value());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Spawn(shared).ok());
  }
  ASSERT_TRUE(engine.RunToCompletion().ok());
  EXPECT_EQ(engine.metrics().commits, 10u);
  EXPECT_EQ(shared.use_count(), 11);  // 10 transactions + local
}

}  // namespace
}  // namespace pardb::core

// Edge cases and secondary engine behaviors: accessors, event caps, option
// toggles, error paths, and cross-checks that the main suites do not cover.

#include <gtest/gtest.h>

#include "analysis/history.h"
#include "core/engine.h"
#include "sim/driver.h"
#include "sim/workload.h"
#include "storage/entity_store.h"
#include "txn/program.h"

namespace pardb::core {
namespace {

using rollback::StrategyKind;
using txn::Operand;
using txn::ProgramBuilder;

txn::Program TwoLock(EntityId e1, EntityId e2, const std::string& name) {
  ProgramBuilder b(name, 1);
  b.LockExclusive(e1).LockExclusive(e2).WriteImm(e2, 1).Commit();
  auto p = b.Build();
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

class EngineEdgeTest : public ::testing::Test {
 protected:
  void Init(EngineOptions options = {}) {
    ids_ = store_.CreateMany(6, 100);
    engine_ = std::make_unique<Engine>(&store_, options);
  }
  storage::EntityStore store_;
  std::unique_ptr<Engine> engine_;
  std::vector<EntityId> ids_;
};

TEST_F(EngineEdgeTest, SpawnNullProgramRejected) {
  Init();
  std::shared_ptr<const txn::Program> null;
  EXPECT_EQ(engine_->Spawn(null).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EngineEdgeTest, AccessorsOnUnknownTxn) {
  Init();
  EXPECT_EQ(engine_->StatusOf(TxnId(99)), TxnStatus::kCommitted);
  EXPECT_EQ(engine_->StateIndexOf(TxnId(99)), 0u);
  EXPECT_EQ(engine_->LockCountOf(TxnId(99)), 0u);
  EXPECT_EQ(engine_->EntryOf(TxnId(99)), 0u);
  EXPECT_EQ(engine_->StrategyOf(TxnId(99)), nullptr);
  EXPECT_EQ(engine_->VarValueOf(TxnId(99), 0), 0);
  EXPECT_EQ(engine_->PreemptionCountOf(TxnId(99)), 0u);
}

TEST_F(EngineEdgeTest, AccessorsTrackProgress) {
  Init();
  auto t = engine_->Spawn(TwoLock(ids_[0], ids_[1], "t"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(engine_->StatusOf(t.value()), TxnStatus::kReady);
  EXPECT_EQ(engine_->EntryOf(t.value()), 0u);
  ASSERT_TRUE(engine_->StepTxn(t.value()).ok());
  EXPECT_EQ(engine_->StateIndexOf(t.value()), 1u);
  EXPECT_EQ(engine_->LockCountOf(t.value()), 1u);
  ASSERT_NE(engine_->StrategyOf(t.value()), nullptr);
  EXPECT_EQ(engine_->StrategyOf(t.value())->name(), "mcs");
}

TEST_F(EngineEdgeTest, RunToCompletionRespectsMaxSteps) {
  Init();
  ASSERT_TRUE(engine_->Spawn(TwoLock(ids_[0], ids_[1], "t")).ok());
  Status s = engine_->RunToCompletion(/*max_steps=*/1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineEdgeTest, DeadlockEventCapRespected) {
  EngineOptions opt;
  opt.max_recorded_events = 1;
  opt.victim_policy = VictimPolicyKind::kMinCostOrdered;
  Init(opt);
  // Several sequential deadlocks; only one event retained.
  for (int round = 0; round < 3; ++round) {
    auto ta = engine_->Spawn(TwoLock(ids_[0], ids_[1], "a"));
    auto tb = engine_->Spawn(TwoLock(ids_[1], ids_[0], "b"));
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    ASSERT_TRUE(engine_->RunToCompletion().ok());
  }
  EXPECT_GE(engine_->metrics().deadlocks, 2u);
  EXPECT_EQ(engine_->deadlock_events().size(), 1u);
}

TEST_F(EngineEdgeTest, LastLockDeclarationReducesMcsCopies) {
  // The same deadlock-free program with and without the §5 declaration:
  // with it, writes after the final lock request keep a single copy.
  auto Run = [&](bool use_declaration) {
    storage::EntityStore store;
    auto ids = store.CreateMany(3, 0);
    EngineOptions opt;
    opt.use_last_lock_declaration = use_declaration;
    Engine engine(&store, opt);
    ProgramBuilder b("p", 1);
    b.LockExclusive(ids[0]).LockExclusive(ids[1]).LockExclusive(ids[2]);
    for (int i = 0; i < 4; ++i) {
      b.WriteImm(ids[0], i).WriteImm(ids[1], i).WriteImm(ids[2], i);
    }
    b.Commit();
    auto p = b.Build();
    EXPECT_TRUE(p.ok());
    auto t = engine.Spawn(std::move(p).value());
    EXPECT_TRUE(t.ok());
    EXPECT_TRUE(engine.RunToCompletion().ok());
    return engine.metrics().max_entity_copies;
  };
  const std::size_t with = Run(true);
  const std::size_t without = Run(false);
  EXPECT_LT(with, without);
  EXPECT_EQ(with, 3u);  // just the three working copies
}

TEST_F(EngineEdgeTest, DumpStateListsTransactionsAndLocks) {
  Init();
  auto t = engine_->Spawn(TwoLock(ids_[0], ids_[1], "t"));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(engine_->StepTxn(t.value()).ok());
  std::string s = engine_->DumpState();
  EXPECT_NE(s.find("T0"), std::string::npos);
  EXPECT_NE(s.find("status=ready"), std::string::npos);
  EXPECT_NE(s.find("E0"), std::string::npos);
}

TEST_F(EngineEdgeTest, RollbackCostDistributionPercentiles) {
  Init();
  EXPECT_EQ(engine_->RollbackCostDistribution().count, 0u);
  auto ta = engine_->Spawn(TwoLock(ids_[0], ids_[1], "a"));
  auto tb = engine_->Spawn(TwoLock(ids_[1], ids_[0], "b"));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  auto d = engine_->RollbackCostDistribution();
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.p50, d.max);
  EXPECT_GT(d.max, 0u);
  EXPECT_GT(d.mean, 0.0);
}

TEST(CostDistributionTest, NearestRankPercentiles) {
  // Pins the nearest-rank semantics (percentile P = sorted[ceil(n*P/100) -
  // 1]). The old p95 guard `(n*95)/100 == n` was dead code — true only for
  // n == 0 — so p95 silently used the floor rank.
  auto Sample = [](std::uint64_t n) {
    std::vector<std::uint32_t> costs;
    for (std::uint64_t i = 1; i <= n; ++i) {
      costs.push_back(static_cast<std::uint32_t>(i));  // values 1..n
    }
    return ComputeCostDistribution(std::move(costs));
  };

  EXPECT_EQ(ComputeCostDistribution({}).count, 0u);

  auto d1 = Sample(1);  // single sample: every percentile is that sample
  EXPECT_EQ(d1.p50, 1u);
  EXPECT_EQ(d1.p95, 1u);
  EXPECT_EQ(d1.max, 1u);

  auto d19 = Sample(19);  // ceil(19*.95)=19 -> the max, not sorted[18*95/100]
  EXPECT_EQ(d19.p50, 10u);
  EXPECT_EQ(d19.p95, 19u);
  EXPECT_EQ(d19.max, 19u);

  auto d20 = Sample(20);  // ceil(20*.95)=19: first n where p95 < max
  EXPECT_EQ(d20.p50, 10u);
  EXPECT_EQ(d20.p95, 19u);
  EXPECT_EQ(d20.max, 20u);

  auto d100 = Sample(100);  // ceil(100*.95)=95
  EXPECT_EQ(d100.p50, 50u);
  EXPECT_EQ(d100.p95, 95u);
  EXPECT_EQ(d100.max, 100u);
  EXPECT_DOUBLE_EQ(d100.mean, 50.5);
}

// A holder with `busy_ops` compute steps between acquiring the lock and
// committing: long enough to outlast any small wait timeout.
txn::Program SlowHolder(EntityId e, int busy_ops) {
  ProgramBuilder b("holder", 1);
  b.LockExclusive(e);
  for (int i = 0; i < busy_ops; ++i) {
    b.Compute(0, Operand::Var(0), txn::ArithOp::kAdd, Operand::Imm(1));
  }
  b.WriteImm(e, 1).Commit();
  auto p = b.Build();
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST_F(EngineEdgeTest, TimeoutExpiresLongNonDeadlockedWait) {
  // kTimeout's documented false positive (engine.h): a wait that merely
  // outlives wait_timeout_steps is expired by StepAny even though no
  // deadlock exists.
  EngineOptions opt;
  opt.handling = DeadlockHandling::kTimeout;
  opt.wait_timeout_steps = 4;
  Init(opt);
  auto holder = engine_->Spawn(SlowHolder(ids_[0], /*busy_ops=*/12));
  auto waiter = engine_->Spawn(TwoLock(ids_[0], ids_[1], "waiter"));
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(waiter.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());  // drives via StepAny
  EXPECT_TRUE(engine_->AllCommitted());
  EXPECT_EQ(engine_->metrics().deadlocks, 0u);
  EXPECT_GE(engine_->metrics().timeouts, 1u);
  // The waiter held nothing, so expiring it was a zero-cost total rollback.
  EXPECT_EQ(engine_->metrics().rollbacks, engine_->metrics().timeouts);
}

TEST_F(EngineEdgeTest, ManualStepTxnNeverExpiresTimeouts) {
  // Timeouts are checked only by StepAny()/RunToCompletion(); purely
  // manual StepTxn driving never expires a wait (engine.h:60-62).
  EngineOptions opt;
  opt.handling = DeadlockHandling::kTimeout;
  opt.wait_timeout_steps = 4;
  Init(opt);
  auto holder = engine_->Spawn(SlowHolder(ids_[0], /*busy_ops=*/12));
  auto waiter = engine_->Spawn(TwoLock(ids_[0], ids_[1], "waiter"));
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(waiter.ok());
  // Holder takes its lock; waiter blocks behind it.
  ASSERT_TRUE(engine_->StepTxn(holder.value()).ok());
  auto blocked = engine_->StepTxn(waiter.value());
  ASSERT_TRUE(blocked.ok());
  ASSERT_EQ(blocked.value(), StepOutcome::kBlocked);
  // Drive the holder far past the timeout threshold: the wait ages in
  // engine steps but is never expired.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine_->StepTxn(holder.value()).ok());
    EXPECT_EQ(engine_->metrics().timeouts, 0u);
    EXPECT_EQ(engine_->StatusOf(waiter.value()), TxnStatus::kWaiting);
  }
  // Finish both; the waiter is granted on release, never timed out.
  while (!engine_->AllCommitted()) {
    auto holder_step = engine_->StepTxn(holder.value());
    ASSERT_TRUE(holder_step.ok());
    auto waiter_step = engine_->StepTxn(waiter.value());
    ASSERT_TRUE(waiter_step.ok());
  }
  EXPECT_EQ(engine_->metrics().timeouts, 0u);
  EXPECT_EQ(engine_->metrics().rollbacks, 0u);
}

TEST(SimDriverEdgeTest, IncompleteRunReported) {
  // Unconstrained min-cost on the adversarial workload with a tiny step
  // budget: the driver reports completed=false instead of erroring.
  sim::SimOptions opt;
  opt.engine.victim_policy = VictimPolicyKind::kMinCost;
  opt.workload.num_entities = 4;
  opt.workload.min_locks = 3;
  opt.workload.max_locks = 4;
  opt.concurrency = 6;
  opt.total_txns = 1000;
  opt.max_steps = 2000;  // far too few
  opt.seed = 1;
  opt.check_serializability = false;
  auto rep = sim::RunSimulation(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_FALSE(rep->completed);
  EXPECT_LT(rep->committed, 1000u);
  EXPECT_NE(rep->ToString().find("INCOMPLETE"), std::string::npos);
}

TEST(SchedulerTest, RoundRobinAndRandomBothComplete) {
  for (auto kind : {SchedulerKind::kRoundRobin, SchedulerKind::kRandom}) {
    storage::EntityStore store;
    store.CreateMany(4, 0);
    EngineOptions opt;
    opt.scheduler = kind;
    Engine engine(&store, opt);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          engine
              .Spawn(TwoLock(EntityId(i % 2), EntityId((i + 1) % 2),
                             "t" + std::to_string(i)))
              .ok());
    }
    ASSERT_TRUE(engine.RunToCompletion().ok());
    EXPECT_EQ(engine.metrics().commits, 4u);
  }
}

TEST(SharedProgramTest, ManyTransactionsShareOneProgram) {
  // Spawning via shared_ptr avoids copying the program per transaction.
  storage::EntityStore store;
  store.CreateMany(2, 0);
  Engine engine(&store, EngineOptions{});
  ProgramBuilder b("shared", 1);
  b.LockExclusive(EntityId(0)).Read(EntityId(0), 0).WriteVar(EntityId(0), 0);
  b.Commit();
  auto built = b.Build();
  ASSERT_TRUE(built.ok());
  auto shared =
      std::make_shared<const txn::Program>(std::move(built).value());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Spawn(shared).ok());
  }
  ASSERT_TRUE(engine.RunToCompletion().ok());
  EXPECT_EQ(engine.metrics().commits, 10u);
  // 10 transactions + local + the compile cache's collision-guard
  // reference — still no per-transaction copies.
  EXPECT_EQ(shared.use_count(), 12);
}

}  // namespace
}  // namespace pardb::core

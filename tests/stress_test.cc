// Stress tests: lock-manager invariant fuzzing under random operation
// sequences, and a thread-per-transaction driver exercising the engine
// under OS-scheduled interleavings (the engine itself is single-threaded;
// callers serialize with a mutex, as a connection multiplexer would).

#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "analysis/history.h"
#include "common/random.h"
#include "core/engine.h"
#include "lock/lock_manager.h"
#include "sim/workload.h"
#include "storage/entity_store.h"

namespace pardb {
namespace {

using lock::LockManager;
using lock::LockMode;

// ---------------------------------------------------------------------------
// Lock manager invariant fuzz
// ---------------------------------------------------------------------------

// Invariants checked after every operation:
//  I1  holders of an entity are pairwise compatible;
//  I2  work conservation: the queue head (position 0) is not grantable;
//  I3  a transaction the manager reports waiting is in exactly one queue;
//  I4  HeldBy/Holders agree.
class LockFuzz {
 public:
  explicit LockFuzz(LockManager::Options options, std::uint64_t seed)
      : lm_(options), options_(options), rng_(seed) {}

  void Run(int steps) {
    for (int i = 0; i < steps; ++i) {
      Step();
      CheckInvariants();
    }
  }

 private:
  static constexpr int kTxns = 8;
  static constexpr int kEntities = 4;

  void Step() {
    const TxnId txn(rng_.Uniform(kTxns));
    const EntityId entity(rng_.Uniform(kEntities));
    switch (rng_.Uniform(4)) {
      case 0: {  // request
        if (lm_.IsWaiting(txn)) break;
        LockMode mode =
            rng_.Bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive;
        auto held = lm_.HeldMode(txn, entity);
        if (held.has_value() &&
            (held == LockMode::kExclusive || mode == LockMode::kShared)) {
          break;  // would be a protocol violation; skip
        }
        auto r = lm_.Request(txn, entity, mode);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
      case 1: {  // release
        if (!lm_.HeldMode(txn, entity).has_value()) break;
        auto r = lm_.Release(txn, entity);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
      case 2: {  // cancel wait
        auto pending = lm_.Waiting(txn);
        if (!pending.has_value()) break;
        auto r = lm_.CancelWait(txn, pending->entity);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
      case 3: {  // downgrade
        if (lm_.HeldMode(txn, entity) != LockMode::kExclusive) break;
        auto r = lm_.Downgrade(txn, entity);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
    }
  }

  void CheckInvariants() {
    for (std::uint64_t e = 0; e < kEntities; ++e) {
      const EntityId entity(e);
      auto holders = lm_.Holders(entity);
      // I1: pairwise compatibility.
      int exclusive = 0;
      for (const auto& [t, m] : holders) {
        (void)t;
        if (m == LockMode::kExclusive) ++exclusive;
      }
      EXPECT_TRUE(exclusive == 0 ||
                  (exclusive == 1 && holders.size() == 1))
          << "incompatible holders on " << entity << "\n" << lm_.ToString();

      // I2: work conservation for the queue head.
      auto queue = lm_.WaitQueue(entity);
      if (!queue.empty()) {
        const auto& [head_txn, head_mode] = queue.front();
        bool compatible_with_holders = true;
        bool self_sole_holder =
            holders.size() == 1 && holders[0].first == head_txn;
        for (const auto& [t, m] : holders) {
          if (t == head_txn) continue;
          if (!lock::Compatible(m, head_mode)) {
            compatible_with_holders = false;
          }
        }
        // An upgrade head is grantable iff sole holder; a plain head iff
        // compatible with all holders. Either way it must NOT be.
        bool head_holds = lm_.HeldMode(head_txn, entity).has_value();
        bool grantable = head_holds ? self_sole_holder
                                    : compatible_with_holders;
        EXPECT_FALSE(grantable)
            << "grantable head left waiting on " << entity << "\n"
            << lm_.ToString();
      }

      // I4: cross-check HeldBy.
      for (const auto& [t, m] : holders) {
        bool found = false;
        for (const auto& [he, hm] : lm_.HeldBy(t)) {
          if (he == entity) {
            EXPECT_EQ(hm, m);
            found = true;
          }
        }
        EXPECT_TRUE(found);
      }
    }
    // I3: waiting transactions appear in exactly one queue.
    for (std::uint64_t t = 0; t < kTxns; ++t) {
      const TxnId txn(t);
      int appearances = 0;
      for (std::uint64_t e = 0; e < kEntities; ++e) {
        for (const auto& [w, m] : lm_.WaitQueue(EntityId(e))) {
          (void)m;
          if (w == txn) ++appearances;
        }
      }
      EXPECT_EQ(appearances, lm_.IsWaiting(txn) ? 1 : 0);
    }
  }

  LockManager lm_;
  LockManager::Options options_;
  Rng rng_;
};

TEST(LockFuzzTest, PaperModelInvariants) {
  LockManager::Options opt;  // paper model: shared bypass, holders-only
  LockFuzz fuzz(opt, 101);
  fuzz.Run(4000);
}

TEST(LockFuzzTest, FifoModelInvariants) {
  LockManager::Options opt;
  opt.fifo_fairness = true;
  opt.wait_edge_policy = lock::WaitEdgePolicy::kHoldersAndQueue;
  LockFuzz fuzz(opt, 202);
  fuzz.Run(4000);
}

// ---------------------------------------------------------------------------
// Thread-per-transaction driver
// ---------------------------------------------------------------------------

TEST(ThreadedDriverTest, ConcurrentClientsStaySerializable) {
  storage::EntityStore store;
  store.CreateMany(8, 100);
  analysis::HistoryRecorder recorder;
  core::EngineOptions opt;
  core::Engine engine(&store, opt, &recorder);
  std::mutex mu;  // the engine API is externally synchronized

  constexpr int kThreads = 6;
  constexpr int kTxnsPerThread = 10;
  sim::WorkloadOptions wopt;
  wopt.num_entities = 8;
  wopt.min_locks = 2;
  wopt.max_locks = 4;

  std::vector<std::thread> threads;
  std::vector<Status> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      sim::WorkloadGenerator gen(wopt, 1000 + t);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        TxnId id;
        {
          std::lock_guard<std::mutex> g(mu);
          auto p = gen.Next();
          if (!p.ok()) {
            failures[t] = p.status();
            return;
          }
          auto spawned = engine.Spawn(std::move(p).value());
          if (!spawned.ok()) {
            failures[t] = spawned.status();
            return;
          }
          id = spawned.value();
        }
        // Drive own transaction to commit; yield while it waits (another
        // thread's transaction must run to release locks).
        for (;;) {
          core::StepOutcome outcome;
          {
            std::lock_guard<std::mutex> g(mu);
            auto r = engine.StepTxn(id);
            if (!r.ok()) {
              failures[t] = r.status();
              return;
            }
            outcome = r.value();
          }
          if (outcome == core::StepOutcome::kCommitted) break;
          if (outcome == core::StepOutcome::kBlocked ||
              outcome == core::StepOutcome::kIdle) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const Status& s : failures) {
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_EQ(engine.metrics().commits,
            static_cast<std::uint64_t>(kThreads * kTxnsPerThread));
  EXPECT_TRUE(recorder.IsConflictSerializable());
}

}  // namespace
}  // namespace pardb

// D16 compiled-program tests: lowering unit asserts (lock indices, upgrade
// and last-lock flags, arith fusion, constant folding), compile-cache
// identity (names excluded), and the differential contract — interpreted
// and compiled execution must produce identical commit logs, final entity
// states and decision-journal chain heads on every workload, including
// shared/exclusive mixes, S->X upgrades, mid-program unlocks and
// deadlock-victim partial rollbacks.

#include "txn/compiled.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/trace.h"
#include "sim/driver.h"
#include "sim/workload.h"
#include "storage/entity_store.h"
#include "txn/program.h"

namespace pardb {
namespace {

using txn::ArithOp;
using txn::MicroOp;
using txn::MicroOpCode;
using txn::Operand;
using txn::Program;
using txn::ProgramBuilder;

std::shared_ptr<const Program> Own(Result<Program> built) {
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::make_shared<const Program>(std::move(built).value());
}

// ---------------------------------------------------------------------------
// Lowering unit asserts.
// ---------------------------------------------------------------------------

TEST(CompiledLoweringTest, LockIndicesCountRequestsBeforeEachOp) {
  ProgramBuilder b("locks", 1);
  b.LockExclusive(EntityId(0))
      .LockExclusive(EntityId(1))
      .Read(EntityId(0), 0)
      .WriteVar(EntityId(1), 0)
      .Commit();
  auto compiled = txn::CompiledProgram::Compile(*Own(std::move(b).Build()));
  ASSERT_NE(compiled, nullptr);
  ASSERT_EQ(compiled->size(), 5u);
  const MicroOp* u = compiled->uops();
  EXPECT_EQ(u[0].code, static_cast<std::uint8_t>(MicroOpCode::kLockExclusive));
  EXPECT_EQ(u[0].lock_index, 0u);
  EXPECT_EQ(u[1].lock_index, 1u);  // one request granted before this op
  EXPECT_EQ(u[2].lock_index, 2u);
  EXPECT_EQ(u[3].lock_index, 2u);
  EXPECT_EQ(u[4].code, static_cast<std::uint8_t>(MicroOpCode::kCommit));
  EXPECT_EQ(u[0].entity, 0u);
  EXPECT_EQ(u[1].entity, 1u);
}

TEST(CompiledLoweringTest, UpgradeAndLastLockFlagsAreStatic) {
  ProgramBuilder b("upgrade", 1);
  b.LockShared(EntityId(5))
      .Read(EntityId(5), 0)
      .LockExclusive(EntityId(5))  // S->X upgrade; also the last request
      .WriteImm(EntityId(5), 9)
      .Commit();
  auto compiled = txn::CompiledProgram::Compile(*Own(std::move(b).Build()));
  ASSERT_NE(compiled, nullptr);
  const MicroOp* u = compiled->uops();
  EXPECT_EQ(u[0].code, static_cast<std::uint8_t>(MicroOpCode::kLockShared));
  EXPECT_FALSE(u[0].flags & txn::kMicroFlagUpgrade);
  EXPECT_FALSE(u[0].flags & txn::kMicroFlagLastLock);
  EXPECT_EQ(u[2].code, static_cast<std::uint8_t>(MicroOpCode::kLockExclusive));
  EXPECT_TRUE(u[2].flags & txn::kMicroFlagUpgrade);
  EXPECT_TRUE(u[2].flags & txn::kMicroFlagLastLock);
}

TEST(CompiledLoweringTest, ArithFusesIntoOpcodeAndConstantsFold) {
  ProgramBuilder b("arith", 2);
  b.LockExclusive(EntityId(0))
      .Compute(0, Operand::Imm(2), ArithOp::kMul, Operand::Imm(3))
      .Compute(1, Operand::Var(0), ArithOp::kAdd, Operand::Imm(1))
      .Compute(0, Operand::Var(0), ArithOp::kSub, Operand::Var(1))
      .Commit();
  auto compiled = txn::CompiledProgram::Compile(*Own(std::move(b).Build()));
  ASSERT_NE(compiled, nullptr);
  const MicroOp* u = compiled->uops();
  // Both-imm compute folds to a constant load at compile time.
  EXPECT_EQ(u[1].code, static_cast<std::uint8_t>(MicroOpCode::kLoadImm));
  EXPECT_EQ(u[1].a, 6);
  EXPECT_EQ(u[1].dst, 0u);
  // Var-imm compute fuses the ArithOp into the opcode byte.
  EXPECT_EQ(u[2].code, static_cast<std::uint8_t>(MicroOpCode::kComputeAdd));
  EXPECT_TRUE(u[2].flags & txn::kMicroFlagAVar);
  EXPECT_FALSE(u[2].flags & txn::kMicroFlagBVar);
  EXPECT_EQ(u[2].a, 0);
  EXPECT_EQ(u[2].b, 1);
  EXPECT_EQ(u[3].code, static_cast<std::uint8_t>(MicroOpCode::kComputeSub));
  EXPECT_TRUE(u[3].flags & txn::kMicroFlagAVar);
  EXPECT_TRUE(u[3].flags & txn::kMicroFlagBVar);
}

TEST(CompiledLoweringTest, WideVarFramesFallBackToInterpreter) {
  ProgramBuilder b("wide", 0x10001);
  b.LockExclusive(EntityId(0)).Read(EntityId(0), 0x10000).Commit();
  auto program = Own(std::move(b).Build());
  EXPECT_EQ(txn::CompiledProgram::Compile(*program), nullptr);
}

// ---------------------------------------------------------------------------
// Cache identity.
// ---------------------------------------------------------------------------

std::shared_ptr<const Program> MixProgram(const std::string& name) {
  ProgramBuilder b(name, 1);
  b.LockShared(EntityId(3))
      .Read(EntityId(3), 0)
      .LockExclusive(EntityId(4))
      .WriteVar(EntityId(4), 0)
      .Commit();
  return Own(std::move(b).Build());
}

TEST(CompileCacheTest, NamesAreExcludedFromProgramIdentity) {
  txn::CompileCache cache;
  auto a = cache.Get(MixProgram("txn-0"));
  auto b = cache.Get(MixProgram("txn-1"));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get()) << "renamed template must hit the cache";
  EXPECT_EQ(cache.stats().compiles, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().compiled_bytes, a->byte_size());
}

TEST(CompileCacheTest, DifferentOpsMissAndTemplateStampsHit) {
  txn::CompileCache cache;
  sim::WorkloadOptions w;
  w.num_entities = 16;
  w.num_templates = 4;
  sim::WorkloadGenerator gen(w, 9);
  std::uint64_t compiles_after_pool = 0;
  for (int i = 0; i < 32; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok());
    cache.Get(std::make_shared<const Program>(std::move(p).value()));
    if (i == 3) compiles_after_pool = cache.stats().compiles;
  }
  // Every admission past the template pool is a stamped copy: compile
  // count stays frozen while hits absorb the remaining 28 admissions.
  EXPECT_EQ(cache.stats().compiles, compiles_after_pool);
  EXPECT_EQ(cache.stats().hits + cache.stats().compiles, 32u);
  EXPECT_GE(cache.stats().hits, 28u);
}

// ---------------------------------------------------------------------------
// Differential: interpreted vs compiled execution.
// ---------------------------------------------------------------------------

struct RunArtifacts {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> commit_log;  // txn,step
  std::vector<Value> final_values;
  std::uint64_t steps = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t deadlocks = 0;
};

RunArtifacts RunPrograms(
    const std::vector<std::shared_ptr<const Program>>& programs,
    std::uint64_t num_entities, bool compile, core::SchedulerKind scheduler,
    std::uint64_t seed) {
  // Admission is windowed like the sim driver's: dumping every program
  // into the engine at once makes the waits-for graph dense enough that
  // cycle enumeration dominates, which is a workload-shape pathology, not
  // what this differential is probing. Both paths use the identical loop.
  constexpr std::size_t kConcurrency = 12;
  storage::EntityStore store;
  store.CreateMany(num_entities, 0);
  core::EngineOptions opt;
  opt.compile_programs = compile;
  opt.scheduler = scheduler;
  opt.seed = seed;
  core::Engine engine(&store, opt, nullptr);
  core::VectorTrace trace;
  engine.set_trace(&trace);
  std::size_t spawned = 0;
  while (engine.metrics().commits < programs.size()) {
    while (spawned < programs.size() &&
           spawned - engine.metrics().commits < kConcurrency) {
      auto s = engine.Spawn(programs[spawned]);
      EXPECT_TRUE(s.ok()) << s.status().ToString();
      ++spawned;
    }
    auto r = engine.StepQuantum(256, false);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) break;
  }

  RunArtifacts out;
  for (const auto& ev : trace.events()) {
    if (ev.kind == core::TraceEvent::Kind::kCommit) {
      out.commit_log.emplace_back(ev.txn.value(), ev.step);
    }
  }
  for (std::uint64_t e = 0; e < num_entities; ++e) {
    auto v = store.Get(EntityId(e));
    EXPECT_TRUE(v.ok());
    out.final_values.push_back(v.value().value);
  }
  out.steps = engine.metrics().steps;
  out.rollbacks = engine.metrics().rollbacks;
  out.deadlocks = engine.metrics().deadlocks;
  return out;
}

void ExpectIdenticalRuns(
    const std::vector<std::shared_ptr<const Program>>& programs,
    std::uint64_t num_entities, core::SchedulerKind scheduler,
    std::uint64_t seed) {
  const RunArtifacts compiled =
      RunPrograms(programs, num_entities, true, scheduler, seed);
  const RunArtifacts interp =
      RunPrograms(programs, num_entities, false, scheduler, seed);
  EXPECT_EQ(compiled.commit_log, interp.commit_log);
  EXPECT_EQ(compiled.final_values, interp.final_values);
  EXPECT_EQ(compiled.steps, interp.steps);
  EXPECT_EQ(compiled.rollbacks, interp.rollbacks);
  EXPECT_EQ(compiled.deadlocks, interp.deadlocks);
}

std::vector<std::shared_ptr<const Program>> GenerateWorkload(
    const sim::WorkloadOptions& w, std::uint64_t seed, std::size_t n) {
  sim::WorkloadGenerator gen(w, seed);
  std::vector<std::shared_ptr<const Program>> programs;
  for (std::size_t i = 0; i < n; ++i) {
    auto p = gen.Next();
    EXPECT_TRUE(p.ok());
    programs.push_back(
        std::make_shared<const Program>(std::move(p).value()));
  }
  return programs;
}

TEST(CompiledDifferentialTest, SharedExclusiveMixesMatchAcrossSeeds) {
  for (std::uint64_t seed : {3u, 17u, 29u}) {
    sim::WorkloadOptions w;
    w.num_entities = 24;
    w.zipf_theta = 0.6;
    w.shared_fraction = 0.5;
    w.min_locks = 2;
    w.max_locks = 4;
    auto programs = GenerateWorkload(w, seed, 80);
    ExpectIdenticalRuns(programs, w.num_entities,
                        core::SchedulerKind::kRandom, seed);
  }
}

TEST(CompiledDifferentialTest, DeadlockVictimRollbacksMatch) {
  for (std::uint64_t seed : {5u, 11u}) {
    sim::WorkloadOptions w;
    w.num_entities = 12;
    w.zipf_theta = 0.9;
    w.min_locks = 3;
    w.max_locks = 5;
    auto programs = GenerateWorkload(w, seed, 60);
    // High contention on a small hot set: the run must include real
    // deadlock-victim partial rollbacks for the comparison to mean much.
    const RunArtifacts compiled = RunPrograms(
        programs, w.num_entities, true, core::SchedulerKind::kRandom, seed);
    EXPECT_GT(compiled.rollbacks, 0u) << "workload produced no rollbacks";
    ExpectIdenticalRuns(programs, w.num_entities,
                        core::SchedulerKind::kRandom, seed);
  }
}

TEST(CompiledDifferentialTest, UpgradeDeadlocksMatch) {
  // Two transactions both read-share e0 then upgrade: the classic S->X
  // upgrade deadlock — one must be rolled back, on either path alike.
  std::vector<std::shared_ptr<const Program>> programs;
  for (int i = 0; i < 2; ++i) {
    ProgramBuilder b("up-" + std::to_string(i), 1);
    b.LockShared(EntityId(0))
        .Read(EntityId(0), 0)
        .LockExclusive(EntityId(0))
        .Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(i + 1))
        .WriteVar(EntityId(0), 0)
        .Commit();
    programs.push_back(Own(std::move(b).Build()));
  }
  const RunArtifacts compiled = RunPrograms(
      programs, 1, true, core::SchedulerKind::kRoundRobin, 1);
  EXPECT_GT(compiled.deadlocks, 0u);
  ExpectIdenticalRuns(programs, 1, core::SchedulerKind::kRoundRobin, 1);
}

TEST(CompiledDifferentialTest, MidProgramUnlocksMatch) {
  // Unlock mid-program (shrinking phase) interleaved across two entities
  // and three transactions.
  std::vector<std::shared_ptr<const Program>> programs;
  for (int i = 0; i < 3; ++i) {
    ProgramBuilder b("un-" + std::to_string(i), 1);
    b.LockExclusive(EntityId(0))
        .Read(EntityId(0), 0)
        .Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(1))
        .WriteVar(EntityId(0), 0)
        .LockExclusive(EntityId(1))
        .Unlock(EntityId(0))
        .WriteVar(EntityId(1), 0)
        .Commit();
    programs.push_back(Own(std::move(b).Build()));
  }
  ExpectIdenticalRuns(programs, 2, core::SchedulerKind::kRoundRobin, 1);
}

// Full-pipeline differential: the sim driver's report string and decision-
// journal chain heads (what `pardb diff-runs` compares) must be identical
// with the compile cache on and off.
TEST(CompiledDifferentialTest, SimReportAndJournalChainMatchAcrossPaths) {
  for (std::uint64_t seed : {7u, 23u}) {
    sim::SimOptions on;
    on.engine.scheduler = core::SchedulerKind::kRandom;
    on.total_txns = 120;
    on.concurrency = 12;
    on.workload.num_entities = 16;
    on.workload.shared_fraction = 0.3;
    on.workload.zipf_theta = 0.5;
    on.seed = seed;
    on.engine.seed = seed;
    sim::SimOptions off = on;
    off.engine.compile_programs = false;

    auto a = sim::RunSimulation(on);
    auto b = sim::RunSimulation(off);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->ToString(), b->ToString());
    EXPECT_EQ(a->journal_records, b->journal_records);
    EXPECT_EQ(a->journal_chain, b->journal_chain)
        << "seed " << seed
        << ": journal chain heads diverged between compiled and "
           "interpreted execution";
  }
}

// The cache-hit telemetry the CI observability smoke asserts on: a
// templated sim run must report hits on the engine metrics.
TEST(CompiledDifferentialTest, TemplatedWorkloadReportsCacheHits) {
  sim::SimOptions opt;
  opt.engine.scheduler = core::SchedulerKind::kRandom;
  opt.total_txns = 100;
  opt.concurrency = 8;
  opt.workload.num_entities = 16;
  opt.workload.num_templates = 5;
  opt.seed = 4;
  opt.engine.seed = 4;
  auto rep = sim::RunSimulation(opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_GT(rep->metrics.compile_cache_hits, 0u);
  EXPECT_LE(rep->metrics.programs_compiled, 5u);
  EXPECT_GT(rep->metrics.compiled_bytes, 0u);
}

}  // namespace
}  // namespace pardb

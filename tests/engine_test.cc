#include <gtest/gtest.h>

#include "analysis/history.h"
#include "core/engine.h"
#include "core/vertex_cut.h"
#include "core/victim_policy.h"
#include "storage/entity_store.h"
#include "txn/program.h"

namespace pardb::core {
namespace {

using rollback::StrategyKind;
using txn::ArithOp;
using txn::Operand;
using txn::ProgramBuilder;

txn::Program Build(ProgramBuilder& b) {
  auto p = b.Build();
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// Increment entity `e` by `delta` via a read-modify-write.
txn::Program IncrementProgram(EntityId e, Value delta,
                              const std::string& name = "inc") {
  ProgramBuilder b(name, 1);
  b.LockExclusive(e)
      .Read(e, 0)
      .Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(delta))
      .WriteVar(e, 0)
      .Commit();
  return Build(b);
}

// Locks e1 then e2 and increments both.
txn::Program TwoLockProgram(EntityId e1, EntityId e2, Value delta,
                            const std::string& name) {
  ProgramBuilder b(name, 1);
  b.LockExclusive(e1)
      .Read(e1, 0)
      .Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(delta))
      .WriteVar(e1, 0)
      .LockExclusive(e2)
      .Read(e2, 0)
      .Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(delta))
      .WriteVar(e2, 0)
      .Commit();
  return Build(b);
}

class EngineTest : public ::testing::Test {
 protected:
  void Init(EngineOptions options = {}) {
    ids_ = store_.CreateMany(8, 100);
    engine_ = std::make_unique<Engine>(&store_, options, &recorder_);
  }

  storage::EntityStore store_;
  analysis::HistoryRecorder recorder_;
  std::unique_ptr<Engine> engine_;
  std::vector<EntityId> ids_;
};

TEST_F(EngineTest, SingleTransactionCommits) {
  Init();
  auto t = engine_->Spawn(IncrementProgram(EntityId(0), 5));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_EQ(engine_->StatusOf(t.value()), TxnStatus::kCommitted);
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 105);
  EXPECT_EQ(engine_->metrics().commits, 1u);
  EXPECT_EQ(engine_->metrics().deadlocks, 0u);
  EXPECT_TRUE(recorder_.IsConflictSerializable());
}

TEST_F(EngineTest, SpawnRejectsUnknownEntity) {
  Init();
  auto t = engine_->Spawn(IncrementProgram(EntityId(999), 1));
  EXPECT_TRUE(t.status().IsNotFound());
}

TEST_F(EngineTest, StepUnknownTransactionFails) {
  Init();
  EXPECT_TRUE(engine_->StepTxn(TxnId(77)).status().IsNotFound());
}

TEST_F(EngineTest, IndependentTransactionsInterleave) {
  Init();
  ASSERT_TRUE(engine_->Spawn(IncrementProgram(EntityId(0), 1)).ok());
  ASSERT_TRUE(engine_->Spawn(IncrementProgram(EntityId(1), 2)).ok());
  ASSERT_TRUE(engine_->Spawn(IncrementProgram(EntityId(2), 3)).ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 101);
  EXPECT_EQ(store_.Get(EntityId(1)).value().value, 102);
  EXPECT_EQ(store_.Get(EntityId(2)).value().value, 103);
  EXPECT_EQ(engine_->metrics().deadlocks, 0u);
}

TEST_F(EngineTest, ConflictingTransactionsSerialize) {
  Init();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine_->Spawn(IncrementProgram(EntityId(0), 1)).ok());
  }
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 104);
  EXPECT_GE(engine_->metrics().lock_waits, 1u);
  EXPECT_TRUE(recorder_.IsConflictSerializable());
}

TEST_F(EngineTest, DeadlockResolvedAndBothCommit) {
  Init();
  auto ta = engine_->Spawn(
      TwoLockProgram(EntityId(0), EntityId(1), 1, "fwd"));
  auto tb = engine_->Spawn(
      TwoLockProgram(EntityId(1), EntityId(0), 10, "rev"));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok()) << engine_->DumpState();
  EXPECT_EQ(engine_->metrics().deadlocks, 1u);
  EXPECT_EQ(engine_->metrics().rollbacks, 1u);
  // Both increments applied exactly once despite the rollback re-execution.
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 111);
  EXPECT_EQ(store_.Get(EntityId(1)).value().value, 111);
  EXPECT_TRUE(recorder_.IsConflictSerializable());
}

TEST_F(EngineTest, PartialRollbackKeepsEarlierLocks) {
  // Victim locks a "home" entity first; a partial rollback to the
  // conflicting lock keeps it, a total restart would release it.
  EngineOptions opt;
  opt.strategy = StrategyKind::kMcs;
  opt.victim_policy = VictimPolicyKind::kMinCost;
  Init(opt);

  // T0: home(2) -> 0 -> 1 ; T1: 1 -> 0. T0's conflict is over entity 0/1,
  // not its home lock.
  ProgramBuilder b0("t0", 1);
  b0.LockExclusive(EntityId(2))
      .Read(EntityId(2), 0)
      .LockExclusive(EntityId(0))
      .Read(EntityId(0), 0)
      .LockExclusive(EntityId(1))
      .WriteVar(EntityId(1), 0)
      .Commit();
  auto t0 = engine_->Spawn(Build(b0));
  auto t1 =
      engine_->Spawn(TwoLockProgram(EntityId(1), EntityId(0), 5, "t1"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());

  // Drive to deadlock: T0 holds 2,0; T1 holds 1; T0 requests 1; T1
  // requests 0.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine_->StepTxn(t0.value()).ok());  // lock 2, read, lock 0,
                                                     // read
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine_->StepTxn(t1.value()).ok());  // lock 1, rmw on 1
  }
  auto blocked = engine_->StepTxn(t0.value());  // request 1 -> wait
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked.value(), StepOutcome::kBlocked);
  auto resolved = engine_->StepTxn(t1.value());  // request 0 -> deadlock
  ASSERT_TRUE(resolved.ok());

  ASSERT_EQ(engine_->deadlock_events().size(), 1u);
  const DeadlockEvent& ev = engine_->deadlock_events()[0];
  EXPECT_EQ(ev.requester, t1.value());
  ASSERT_EQ(ev.victims.size(), 1u);
  EXPECT_EQ(engine_->metrics().partial_rollbacks +
                engine_->metrics().total_rollbacks,
            1u);
  if (ev.victims[0] == t0.value()) {
    // T0 rolled back to before locking entity 0: home lock kept.
    EXPECT_TRUE(
        engine_->lock_manager().HeldMode(t0.value(), EntityId(2)).has_value());
    EXPECT_EQ(engine_->metrics().partial_rollbacks, 1u);
  }
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_TRUE(recorder_.IsConflictSerializable());
}

TEST_F(EngineTest, TotalRestartStrategyAlwaysRollsToZero) {
  EngineOptions opt;
  opt.strategy = StrategyKind::kTotalRestart;
  Init(opt);
  ASSERT_TRUE(
      engine_->Spawn(TwoLockProgram(EntityId(0), EntityId(1), 1, "a")).ok());
  ASSERT_TRUE(
      engine_->Spawn(TwoLockProgram(EntityId(1), EntityId(0), 2, "b")).ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_EQ(engine_->metrics().partial_rollbacks, 0u);
  EXPECT_GE(engine_->metrics().total_rollbacks, 1u);
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 103);
  EXPECT_EQ(store_.Get(EntityId(1)).value().value, 103);
}

TEST_F(EngineTest, ExplicitUnlockPublishesEarly) {
  Init();
  ProgramBuilder b("unlocker", 1);
  b.LockExclusive(EntityId(0))
      .Read(EntityId(0), 0)
      .Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(7))
      .WriteVar(EntityId(0), 0)
      .Unlock(EntityId(0))
      .Commit();
  auto t = engine_->Spawn(Build(b));
  ASSERT_TRUE(t.ok());
  // Step up to and including the unlock.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(engine_->StepTxn(t.value()).ok());
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 107);
  EXPECT_EQ(store_.Get(EntityId(0)).value().version, 1u);
  EXPECT_EQ(engine_->StatusOf(t.value()), TxnStatus::kReady);  // not done yet
  ASSERT_TRUE(engine_->RunToCompletion().ok());
}

TEST_F(EngineTest, ImplicitCommitWithoutCommitOp) {
  Init();
  ProgramBuilder b("no-commit", 1);
  b.LockExclusive(EntityId(0)).Read(EntityId(0), 0).WriteVar(EntityId(0), 0);
  auto t = engine_->Spawn(Build(b));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_EQ(engine_->StatusOf(t.value()), TxnStatus::kCommitted);
  EXPECT_EQ(store_.Get(EntityId(0)).value().version, 1u);
}

TEST_F(EngineTest, UpgradeDeadlockResolved) {
  // Classic upgrade deadlock: both S-hold entity 0, both upgrade.
  Init();
  auto MakeUpgrader = [&](const std::string& name) {
    ProgramBuilder b(name, 1);
    b.LockShared(EntityId(0))
        .Read(EntityId(0), 0)
        .LockExclusive(EntityId(0))
        .WriteVar(EntityId(0), 0)
        .Commit();
    return Build(b);
  };
  auto t0 = engine_->Spawn(MakeUpgrader("u0"));
  auto t1 = engine_->Spawn(MakeUpgrader("u1"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(engine_->StepTxn(t0.value()).ok());  // S(0)
  ASSERT_TRUE(engine_->StepTxn(t1.value()).ok());  // S(0)
  ASSERT_TRUE(engine_->StepTxn(t0.value()).ok());  // read
  ASSERT_TRUE(engine_->StepTxn(t1.value()).ok());  // read
  auto w0 = engine_->StepTxn(t0.value());          // upgrade waits on t1
  ASSERT_TRUE(w0.ok());
  EXPECT_EQ(w0.value(), StepOutcome::kBlocked);
  auto w1 = engine_->StepTxn(t1.value());  // upgrade -> deadlock
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok()) << engine_->DumpState();
  EXPECT_EQ(engine_->metrics().deadlocks, 1u);
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 100);  // writes of v0=100
  EXPECT_TRUE(recorder_.IsConflictSerializable());
}

TEST_F(EngineTest, RequesterPolicyRollsBackRequester) {
  EngineOptions opt;
  opt.victim_policy = VictimPolicyKind::kRequester;
  Init(opt);
  auto ta =
      engine_->Spawn(TwoLockProgram(EntityId(0), EntityId(1), 1, "a"));
  auto tb =
      engine_->Spawn(TwoLockProgram(EntityId(1), EntityId(0), 2, "b"));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  ASSERT_GE(engine_->deadlock_events().size(), 1u);
  const auto& ev = engine_->deadlock_events()[0];
  EXPECT_EQ(ev.victims, std::vector<TxnId>{ev.requester});
  EXPECT_EQ(engine_->metrics().preemptions, 0u);
}

TEST_F(EngineTest, YoungestAndOldestPolicies) {
  for (auto kind : {VictimPolicyKind::kYoungest, VictimPolicyKind::kOldest}) {
    EngineOptions opt;
    opt.victim_policy = kind;
    storage::EntityStore store;
    store.CreateMany(4, 0);
    Engine engine(&store, opt);
    auto ta = engine.Spawn(TwoLockProgram(EntityId(0), EntityId(1), 1, "a"));
    auto tb = engine.Spawn(TwoLockProgram(EntityId(1), EntityId(0), 2, "b"));
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    ASSERT_TRUE(engine.RunToCompletion().ok());
    ASSERT_GE(engine.deadlock_events().size(), 1u);
    const auto& ev = engine.deadlock_events()[0];
    ASSERT_EQ(ev.victims.size(), 1u);
    if (kind == VictimPolicyKind::kYoungest) {
      EXPECT_EQ(ev.victims[0], tb.value());  // entered later
    } else {
      EXPECT_EQ(ev.victims[0], ta.value());
    }
  }
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  auto RunOnce = [](std::uint64_t seed) {
    storage::EntityStore store;
    store.CreateMany(4, 100);
    EngineOptions opt;
    opt.scheduler = SchedulerKind::kRandom;
    opt.seed = seed;
    Engine engine(&store, opt);
    for (int i = 0; i < 3; ++i) {
      auto p = TwoLockProgram(EntityId(i % 2), EntityId((i + 1) % 2), i + 1,
                              "t" + std::to_string(i));
      EXPECT_TRUE(engine.Spawn(std::move(p)).ok());
    }
    EXPECT_TRUE(engine.RunToCompletion().ok());
    return std::make_tuple(engine.metrics().ops_executed,
                           engine.metrics().deadlocks,
                           engine.metrics().wasted_ops,
                           store.Get(EntityId(0)).value().value,
                           store.Get(EntityId(1)).value().value);
  };
  EXPECT_EQ(RunOnce(7), RunOnce(7));
  EXPECT_EQ(RunOnce(8), RunOnce(8));
}

TEST_F(EngineTest, MetricsCountWastedOps) {
  EngineOptions opt;
  opt.victim_policy = VictimPolicyKind::kMinCost;
  Init(opt);
  auto ta = engine_->Spawn(TwoLockProgram(EntityId(0), EntityId(1), 1, "a"));
  auto tb = engine_->Spawn(TwoLockProgram(EntityId(1), EntityId(0), 2, "b"));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_GT(engine_->metrics().wasted_ops, 0u);
  EXPECT_EQ(engine_->metrics().wasted_ops, engine_->metrics().ideal_wasted_ops)
      << "MCS rollback is exact";
}

TEST_F(EngineTest, PreemptionCounterTracksNonRequesterVictims) {
  EngineOptions opt;
  opt.victim_policy = VictimPolicyKind::kMinCost;
  Init(opt);
  // The requester's rollback is expensive (20 filler ops after its first
  // lock), the other transaction's is cheap: min-cost preempts the cheap
  // one even though it did not cause the conflict.
  ProgramBuilder b0("cheap", 1);
  b0.LockExclusive(EntityId(0)).LockExclusive(EntityId(1)).Commit();
  auto t0 = engine_->Spawn(Build(b0));

  ProgramBuilder b1("expensive-requester", 1);
  b1.LockExclusive(EntityId(1));
  for (int i = 0; i < 20; ++i) {
    b1.Compute(0, Operand::Var(0), ArithOp::kAdd, Operand::Imm(1));
  }
  b1.LockExclusive(EntityId(0)).Commit();
  auto t1 = engine_->Spawn(Build(b1));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());

  ASSERT_TRUE(engine_->StepTxn(t0.value()).ok());  // t0 locks 0
  for (int i = 0; i < 21; ++i) {
    ASSERT_TRUE(engine_->StepTxn(t1.value()).ok());  // t1 locks 1 + work
  }
  auto blocked = engine_->StepTxn(t0.value());  // t0 waits on 1 (cost 1)
  ASSERT_TRUE(blocked.ok());
  ASSERT_EQ(blocked.value(), StepOutcome::kBlocked);
  auto outcome = engine_->StepTxn(t1.value());  // t1 waits on 0 -> deadlock
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(engine_->deadlock_events().size(), 1u);
  const auto& ev = engine_->deadlock_events()[0];
  EXPECT_EQ(ev.requester, t1.value());
  ASSERT_EQ(ev.victims.size(), 1u);
  EXPECT_EQ(ev.victims[0], t0.value());  // cheaper victim preempted
  EXPECT_EQ(engine_->metrics().preemptions, 1u);
  EXPECT_EQ(engine_->PreemptionCountOf(t0.value()), 1u);
  EXPECT_EQ(engine_->PreemptionCountOf(t1.value()), 0u);
  ASSERT_TRUE(engine_->RunToCompletion().ok());
}

TEST_F(EngineTest, TimeoutHandlingResolvesDeadlock) {
  EngineOptions opt;
  opt.handling = core::DeadlockHandling::kTimeout;
  opt.wait_timeout_steps = 10;
  Init(opt);
  auto ta = engine_->Spawn(TwoLockProgram(EntityId(0), EntityId(1), 1, "a"));
  auto tb = engine_->Spawn(TwoLockProgram(EntityId(1), EntityId(0), 2, "b"));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  // RunToCompletion uses StepAny, which expires stale waits.
  ASSERT_TRUE(engine_->RunToCompletion().ok()) << engine_->DumpState();
  EXPECT_GE(engine_->metrics().timeouts, 1u);
  EXPECT_EQ(engine_->metrics().deadlocks, 0u);  // no graph detection ran
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 103);
  EXPECT_EQ(store_.Get(EntityId(1)).value().value, 103);
  EXPECT_TRUE(recorder_.IsConflictSerializable());
}

TEST_F(EngineTest, TimeoutDoesNotFireOnShortWaits) {
  EngineOptions opt;
  opt.handling = core::DeadlockHandling::kTimeout;
  opt.wait_timeout_steps = 1000;
  Init(opt);
  // Pure queueing without deadlock: nothing should ever time out.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine_->Spawn(IncrementProgram(EntityId(0), 1)).ok());
  }
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_EQ(engine_->metrics().timeouts, 0u);
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 103);
}

TEST_F(EngineTest, PeriodicDetectionResolvesDeadlocks) {
  EngineOptions opt;
  opt.detection_mode = core::DetectionMode::kPeriodic;
  opt.detection_period = 16;
  Init(opt);
  auto ta = engine_->Spawn(TwoLockProgram(EntityId(0), EntityId(1), 1, "a"));
  auto tb = engine_->Spawn(TwoLockProgram(EntityId(1), EntityId(0), 10, "b"));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok()) << engine_->DumpState();
  EXPECT_GE(engine_->metrics().periodic_scans, 1u);
  EXPECT_EQ(engine_->metrics().deadlocks, 1u);
  EXPECT_EQ(store_.Get(EntityId(0)).value().value, 111);
  EXPECT_EQ(store_.Get(EntityId(1)).value().value, 111);
  EXPECT_TRUE(recorder_.IsConflictSerializable());
}

TEST_F(EngineTest, PeriodicDetectionCompletesContendedWorkload) {
  EngineOptions opt;
  opt.detection_mode = core::DetectionMode::kPeriodic;
  opt.detection_period = 64;
  opt.scheduler = SchedulerKind::kRandom;
  Init(opt);
  for (int i = 0; i < 6; ++i) {
    auto p = TwoLockProgram(EntityId(i % 3), EntityId((i + 1) % 3), i,
                            "t" + std::to_string(i));
    ASSERT_TRUE(engine_->Spawn(std::move(p)).ok());
  }
  ASSERT_TRUE(engine_->RunToCompletion().ok()) << engine_->DumpState();
  EXPECT_TRUE(recorder_.IsConflictSerializable());
}

TEST_F(EngineTest, TraceRecordsProtocolEvents) {
  Init();
  RingTrace trace(64);
  engine_->set_trace(&trace);
  auto ta = engine_->Spawn(TwoLockProgram(EntityId(0), EntityId(1), 1, "a"));
  auto tb = engine_->Spawn(TwoLockProgram(EntityId(1), EntityId(0), 2, "b"));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE(engine_->RunToCompletion().ok());
  EXPECT_EQ(trace.CountOf(TraceEvent::Kind::kSpawn), 2u);
  EXPECT_EQ(trace.CountOf(TraceEvent::Kind::kCommit), 2u);
  EXPECT_EQ(trace.CountOf(TraceEvent::Kind::kDeadlock), 1u);
  EXPECT_EQ(trace.CountOf(TraceEvent::Kind::kRollback), 1u);
  EXPECT_GE(trace.CountOf(TraceEvent::Kind::kBlocked), 1u);
  // Re-granted locks after the rollback: at least 4 grants + re-grants.
  EXPECT_GE(trace.CountOf(TraceEvent::Kind::kLockGranted), 4u);
  std::string s = trace.ToString();
  EXPECT_NE(s.find("deadlock"), std::string::npos);
  EXPECT_NE(s.find("rollback"), std::string::npos);
  EXPECT_NE(s.find("commit"), std::string::npos);
}

TEST(RingTraceTest, CapacityBoundsWindowButNotCounts) {
  RingTrace trace(2);
  for (int i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kCommit;
    ev.step = static_cast<std::uint64_t>(i);
    ev.txn = TxnId(static_cast<std::uint64_t>(i));
    trace.OnEvent(ev);
  }
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.total_events(), 5u);
  EXPECT_EQ(trace.CountOf(TraceEvent::Kind::kCommit), 5u);
  EXPECT_EQ(trace.events().front().step, 3u);  // oldest retained
}

TEST(TraceEventTest, ToStringFormats) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kRollback;
  ev.step = 7;
  ev.txn = TxnId(3);
  ev.pc = 12;
  ev.target = 1;
  ev.cost = 4;
  EXPECT_EQ(ev.ToString(), "[7] rollback T3 pc=12 -> lock state 1 (cost 4)");
  TraceEvent g;
  g.kind = TraceEvent::Kind::kLockGranted;
  g.txn = TxnId(1);
  g.entity = EntityId(9);
  g.pc = 2;
  g.step = 1;
  EXPECT_EQ(g.ToString(), "[1] grant T1 pc=2 entity=E9");
}

TEST(VictimPolicyTest, MinCostPicksCheapest) {
  std::vector<VictimCandidate> cs(3);
  cs[0] = {TxnId(1), 10, 2, 2, 7, 7, false};
  cs[1] = {TxnId(2), 11, 1, 1, 4, 4, true};
  cs[2] = {TxnId(3), 12, 0, 0, 9, 9, false};
  EXPECT_EQ(ChooseVictim(VictimPolicyKind::kMinCost, cs, 11).txn, TxnId(2));
}

TEST(VictimPolicyTest, MinCostTieBreaksBySmallerId) {
  std::vector<VictimCandidate> cs(2);
  cs[0] = {TxnId(5), 10, 0, 0, 4, 4, false};
  cs[1] = {TxnId(3), 11, 0, 0, 4, 4, true};
  EXPECT_EQ(ChooseVictim(VictimPolicyKind::kMinCost, cs, 11).txn, TxnId(3));
}

TEST(VictimPolicyTest, OrderedExcludesOlderThanRequester) {
  // Requester entry = 10. Candidate entry 5 is older: protected.
  std::vector<VictimCandidate> cs(3);
  cs[0] = {TxnId(1), 5, 0, 0, 1, 1, false};    // oldest, cheapest — protected
  cs[1] = {TxnId(2), 10, 0, 0, 6, 6, true};    // the requester
  cs[2] = {TxnId(3), 15, 0, 0, 4, 4, false};   // younger
  const auto& pick =
      ChooseVictim(VictimPolicyKind::kMinCostOrdered, cs, 10);
  EXPECT_EQ(pick.txn, TxnId(3));
}

TEST(VictimPolicyTest, OrderedFallsBackToRequester) {
  std::vector<VictimCandidate> cs(2);
  cs[0] = {TxnId(1), 5, 0, 0, 1, 1, false};
  cs[1] = {TxnId(2), 10, 0, 0, 6, 6, true};
  EXPECT_EQ(ChooseVictim(VictimPolicyKind::kMinCostOrdered, cs, 10).txn,
            TxnId(2));
}

TEST(VictimPolicyTest, YoungestOldestRequester) {
  std::vector<VictimCandidate> cs(3);
  cs[0] = {TxnId(1), 5, 0, 0, 1, 1, false};
  cs[1] = {TxnId(2), 10, 0, 0, 6, 6, true};
  cs[2] = {TxnId(3), 15, 0, 0, 4, 4, false};
  EXPECT_EQ(ChooseVictim(VictimPolicyKind::kYoungest, cs, 10).txn, TxnId(3));
  EXPECT_EQ(ChooseVictim(VictimPolicyKind::kOldest, cs, 10).txn, TxnId(1));
  EXPECT_EQ(ChooseVictim(VictimPolicyKind::kRequester, cs, 10).txn, TxnId(2));
}

TEST(VictimPolicyTest, KindNames) {
  EXPECT_EQ(VictimPolicyKindName(VictimPolicyKind::kMinCost), "min-cost");
  EXPECT_EQ(VictimPolicyKindName(VictimPolicyKind::kMinCostOrdered),
            "min-cost-ordered");
  EXPECT_EQ(VictimPolicyKindName(VictimPolicyKind::kYoungest), "youngest");
  EXPECT_EQ(VictimPolicyKindName(VictimPolicyKind::kOldest), "oldest");
  EXPECT_EQ(VictimPolicyKindName(VictimPolicyKind::kRequester), "requester");
}

TEST(VertexCutTest, SingleCycleSinglePick) {
  // One cycle over members {0,1,2} with costs {5,3,9}: pick {1}.
  VertexCutResult r = SolveVertexCut({{0, 1, 2}}, {5, 3, 9});
  EXPECT_EQ(r.members, std::vector<std::size_t>{1});
  EXPECT_EQ(r.total_cost, 3u);
  EXPECT_TRUE(r.exact);
}

TEST(VertexCutTest, SharedMemberBeatsTwoPicks) {
  // Cycles {0,1} and {0,2}; costs 0:5, 1:2, 2:2. {1,2} costs 4 < {0}=5.
  VertexCutResult r = SolveVertexCut({{0, 1}, {0, 2}}, {5, 2, 2});
  EXPECT_EQ(r.members, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(r.total_cost, 4u);
}

TEST(VertexCutTest, HubCheaperThanPair) {
  VertexCutResult r = SolveVertexCut({{0, 1}, {0, 2}}, {3, 2, 2});
  EXPECT_EQ(r.members, std::vector<std::size_t>{0});
  EXPECT_EQ(r.total_cost, 3u);
}

// ---------------------------------------------------------------------------
// StepQuantum: bounded quanta must not disturb the step sequence
// ---------------------------------------------------------------------------

// Spawns a contended crossing-lock-order mix (deadlocks included) into a
// fresh engine over `store`.
void SpawnContendedMix(Engine& engine, const std::vector<EntityId>& ids) {
  for (int i = 0; i < 8; ++i) {
    const EntityId a = ids[i % 4];
    const EntityId b = ids[(i + 1) % 4];
    auto t = engine.Spawn(i % 2 == 0 ? TwoLockProgram(a, b, 1, "fwd")
                                     : TwoLockProgram(b, a, 1, "rev"));
    ASSERT_TRUE(t.ok());
  }
}

TEST(StepQuantumTest, ChoppingIntoArbitraryQuantaMatchesOneUnboundedRun) {
  EngineOptions opt;
  opt.scheduler = SchedulerKind::kRandom;
  opt.seed = 5;

  storage::EntityStore store_a;
  auto ids_a = store_a.CreateMany(8, 100);
  Engine a(&store_a, opt);
  SpawnContendedMix(a, ids_a);
  ASSERT_TRUE(a.RunToCompletion().ok());

  storage::EntityStore store_b;
  auto ids_b = store_b.CreateMany(8, 100);
  Engine b(&store_b, opt);
  SpawnContendedMix(b, ids_b);
  // Ragged quantum sizes, nothing aligned with commits or deadlocks: the
  // engine keeps no per-quantum state, so the step sequence must be the
  // one RunToCompletion produced.
  const std::uint64_t budgets[] = {1, 2, 3, 5, 7};
  for (std::size_t i = 0; !b.AllCommitted(); ++i) {
    auto qr = b.StepQuantum(budgets[i % 5]);
    ASSERT_TRUE(qr.ok()) << qr.status().ToString();
    ASSERT_FALSE(qr->ran_dry);
    ASSERT_LT(i, 10'000u) << "quantum loop failed to converge";
  }

  EXPECT_EQ(a.metrics().commits, b.metrics().commits);
  EXPECT_EQ(a.metrics().rollbacks, b.metrics().rollbacks);
  EXPECT_EQ(a.metrics().deadlocks, b.metrics().deadlocks);
  EXPECT_EQ(a.metrics().ops_executed, b.metrics().ops_executed);
  EXPECT_EQ(a.metrics().lock_waits, b.metrics().lock_waits);
  for (std::size_t i = 0; i < ids_a.size(); ++i) {
    EXPECT_EQ(store_a.Get(ids_a[i]).value().value,
              store_b.Get(ids_b[i]).value().value);
  }
}

TEST_F(EngineTest, StepQuantumStopsRightAfterACommitWhenAsked) {
  Init();
  ASSERT_TRUE(engine_->Spawn(IncrementProgram(EntityId(0), 1)).ok());
  ASSERT_TRUE(engine_->Spawn(IncrementProgram(EntityId(1), 1)).ok());
  auto qr = engine_->StepQuantum(1000, /*stop_after_commit=*/true);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(qr->committed);
  EXPECT_EQ(engine_->metrics().commits, 1u);  // stopped at the first commit
  EXPECT_FALSE(engine_->AllCommitted());
  qr = engine_->StepQuantum(1000, /*stop_after_commit=*/true);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(qr->committed);
  EXPECT_TRUE(engine_->AllCommitted());
}

TEST_F(EngineTest, StepQuantumRespectsTheStepBudget) {
  Init();
  ASSERT_TRUE(engine_->Spawn(IncrementProgram(EntityId(0), 1)).ok());
  auto qr = engine_->StepQuantum(2);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->steps, 2u);
  EXPECT_FALSE(qr->ran_dry);
  EXPECT_FALSE(qr->committed);
  EXPECT_FALSE(engine_->AllCommitted());
  ASSERT_TRUE(engine_->StepQuantum(1000).ok());
  EXPECT_TRUE(engine_->AllCommitted());
}

TEST_F(EngineTest, StepQuantumOnEmptyEngineDoesNothing) {
  Init();
  auto qr = engine_->StepQuantum(100);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->steps, 0u);
  EXPECT_FALSE(qr->ran_dry);
  EXPECT_FALSE(qr->committed);
}

TEST(VertexCutTest, EmptyCyclesNoVictims) {
  VertexCutResult r = SolveVertexCut({}, {});
  EXPECT_TRUE(r.members.empty());
  EXPECT_EQ(r.total_cost, 0u);
}

TEST(VertexCutTest, GreedyFallbackStillCovers) {
  // Force greedy with exact_limit = 1.
  VertexCutResult r = SolveVertexCut({{0, 1}, {1, 2}, {2, 3}},
                                     {1, 1, 1, 1}, /*exact_limit=*/1);
  EXPECT_FALSE(r.exact);
  // Whatever it picked must hit all three cycles.
  auto Hit = [&](std::initializer_list<std::size_t> cycle) {
    for (std::size_t m : r.members) {
      for (std::size_t c : cycle) {
        if (m == c) return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(Hit({0, 1}));
  EXPECT_TRUE(Hit({1, 2}));
  EXPECT_TRUE(Hit({2, 3}));
}

TEST(VertexCutTest, ExactBeatsGreedyOnAdversarialInstance) {
  // Greedy ratio favors member 2 (covers both cycles, cost 3) but the
  // optimum is {0,1} with cost 2.
  VertexCutResult exact =
      SolveVertexCut({{0, 2}, {1, 2}}, {1, 1, 3}, /*exact_limit=*/10);
  EXPECT_EQ(exact.total_cost, 2u);
  EXPECT_EQ(exact.members, (std::vector<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace pardb::core

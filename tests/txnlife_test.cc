// D13 transaction lifecycle timelines: the wasted-work ledger attributed by
// rollback cause (asserted against the paper's exact Figure 1 and Figure 2
// schedules), the bounded event ring with counted eviction, the per-txn
// record/latency-component arithmetic, and the JSON the live endpoints
// serve.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>

#include "core/engine.h"
#include "obs/clock.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/txnlife.h"
#include "sim/scenario.h"

namespace pardb {
namespace {

using core::VictimPolicyKind;
using obs::kNumRollbackCauses;
using obs::ManualClock;
using obs::MetricsRegistry;
using obs::RollbackCause;
using obs::TxnLifeBook;
using obs::TxnTimelineRecord;

core::EngineOptions FigOptions(VictimPolicyKind policy) {
  core::EngineOptions opt;
  opt.victim_policy = policy;
  return opt;
}

std::uint64_t SumCauses(
    const std::array<std::uint64_t, kNumRollbackCauses>& by_cause) {
  std::uint64_t total = 0;
  for (std::uint64_t v : by_cause) total += v;
  return total;
}

// ---------------------------------------------------------------------------
// Wasted-work attribution on the paper's worked figures.
// ---------------------------------------------------------------------------

TEST(TxnLifeLedgerTest, Figure1MinCostAttributesSelfRollbackCost4) {
  // Unconstrained min-cost sacrifices the requester T2 itself (cost 4, the
  // paper's 12-8). The ledger must attribute exactly those 4 steps to
  // self_rollback and nothing to any other cause.
  TxnLifeBook book;
  auto fig = sim::BuildFigure1(FigOptions(VictimPolicyKind::kMinCost), &book);
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  ASSERT_TRUE(fig->TriggerDeadlock().ok());

  const auto self = static_cast<std::size_t>(RollbackCause::kSelfRollback);
  EXPECT_EQ(book.rollbacks_by_cause()[self], 1u);
  EXPECT_EQ(book.wasted_by_cause()[self], 4u);
  EXPECT_EQ(book.wasted_steps(), 4u);
  EXPECT_EQ(SumCauses(book.wasted_by_cause()), 4u);
  EXPECT_EQ(SumCauses(book.rollbacks_by_cause()), 1u);

  // The victim's own record carries the tagged event: cause label, cost,
  // the holder it was waiting on (T4) and the deadlock ordinal.
  const TxnTimelineRecord rec = book.RecordOf(fig->t2);
  EXPECT_EQ(rec.rollbacks, 1u);
  EXPECT_EQ(rec.redo_steps, 4u);
  bool saw_rollback = false;
  for (const auto& e : rec.events) {
    if (e.kind != obs::TxnLifeEvent::Kind::kRollback) continue;
    saw_rollback = true;
    EXPECT_EQ(e.cause, RollbackCause::kSelfRollback);
    EXPECT_EQ(e.detail, 4u);                        // cost
    EXPECT_EQ(e.causing, fig->t4.value() + 1);      // blocked on T4's e
    EXPECT_EQ(e.cycle, 1u);                         // first deadlock
  }
  EXPECT_TRUE(saw_rollback);

  const std::string json = obs::TxnTimelineToJson(rec);
  EXPECT_NE(json.find("\"cause\":\"self_rollback\""), std::string::npos);
  EXPECT_NE(json.find("\"cost\":4"), std::string::npos);
}

TEST(TxnLifeLedgerTest, Figure1OrderedAttributesOmegaPreemptionCost5) {
  // Theorem 2's ordered policy overrides min-cost and preempts T4
  // (cost 5) instead of the requester: one rollback, attributed to
  // omega_preemption, with the requester T2 as the causing transaction.
  TxnLifeBook book;
  auto fig =
      sim::BuildFigure1(FigOptions(VictimPolicyKind::kMinCostOrdered), &book);
  ASSERT_TRUE(fig.ok()) << fig.status().ToString();
  ASSERT_TRUE(fig->TriggerDeadlock().ok());

  const auto omega =
      static_cast<std::size_t>(RollbackCause::kOmegaPreemption);
  EXPECT_EQ(book.rollbacks_by_cause()[omega], 1u);
  EXPECT_EQ(book.wasted_by_cause()[omega], 5u);
  EXPECT_EQ(SumCauses(book.wasted_by_cause()), 5u);

  const TxnTimelineRecord rec = book.RecordOf(fig->t4);
  EXPECT_EQ(rec.rollbacks, 1u);
  EXPECT_EQ(rec.redo_steps, 5u);
  bool saw_rollback = false;
  for (const auto& e : rec.events) {
    if (e.kind != obs::TxnLifeEvent::Kind::kRollback) continue;
    saw_rollback = true;
    EXPECT_EQ(e.cause, RollbackCause::kOmegaPreemption);
    EXPECT_EQ(e.detail, 5u);
    EXPECT_EQ(e.causing, fig->t2.value() + 1);
  }
  EXPECT_TRUE(saw_rollback);
}

TEST(TxnLifeLedgerTest, Figure2AlternationIsSelfRollbacksAllTheWayDown) {
  // The paper's mutual-preemption schedule under min-cost: every deadlock
  // resolution is the requester rolling itself back (T2 and T3 in turn),
  // so the whole ledger lands on the self_rollback cause — 2 per round.
  TxnLifeBook book;
  auto out = sim::RunFigure2MutualPreemption(
      FigOptions(VictimPolicyKind::kMinCost), /*rounds=*/4,
      /*lineage=*/nullptr, &book);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->pattern_sustained);

  const auto self = static_cast<std::size_t>(RollbackCause::kSelfRollback);
  const auto omega =
      static_cast<std::size_t>(RollbackCause::kOmegaPreemption);
  EXPECT_GE(book.rollbacks_by_cause()[self], 8u);
  EXPECT_EQ(book.rollbacks_by_cause()[omega], 0u);
  EXPECT_EQ(SumCauses(book.rollbacks_by_cause()),
            book.rollbacks_by_cause()[self]);
  EXPECT_EQ(SumCauses(book.wasted_by_cause()), book.wasted_steps());
  EXPECT_GT(book.wasted_steps(), 0u);
}

TEST(TxnLifeLedgerTest, Figure2OrderedPolicyPaysOnceAndCommitsAll) {
  // Under the ordered policy the very first resolution ω-preempts T4 and
  // the alternation never starts: one rollback of cost 5 total, every
  // transaction committed, and the ledger says exactly that.
  TxnLifeBook book;
  auto out = sim::RunFigure2MutualPreemption(
      FigOptions(VictimPolicyKind::kMinCostOrdered), /*rounds=*/4,
      /*lineage=*/nullptr, &book);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->all_committed);

  const auto omega =
      static_cast<std::size_t>(RollbackCause::kOmegaPreemption);
  EXPECT_EQ(book.rollbacks_by_cause()[omega], 1u);
  EXPECT_EQ(book.wasted_by_cause()[omega], 5u);
  EXPECT_EQ(SumCauses(book.rollbacks_by_cause()), 1u);
  EXPECT_EQ(book.wasted_steps(), 5u);
  EXPECT_EQ(book.committed(), 4u);

  // Digest ranks committed transactions by end-to-end steps, descending.
  const obs::TxnLifeDigest d = book.Digest(/*shard=*/0);
  EXPECT_EQ(d.committed, 4u);
  EXPECT_EQ(d.wasted_steps, 5u);
  EXPECT_EQ(d.dropped_events, 0u);
  ASSERT_GE(d.slowest.size(), 2u);
  for (std::size_t i = 1; i < d.slowest.size(); ++i) {
    EXPECT_GE(d.slowest[i - 1].e2e_steps, d.slowest[i].e2e_steps);
  }

  // The endpoint renderers accept the digest as-is.
  const std::string slowest = obs::SlowestTxnsJson({d}, 2);
  EXPECT_NE(slowest.find("\"k\":2"), std::string::npos);
  EXPECT_NE(slowest.find("\"count\":2"), std::string::npos);
  const std::string by_id =
      obs::TxnByIdJson({d}, d.slowest.front().txn);
  EXPECT_NE(by_id.find("\"matches\":[{"), std::string::npos);
  EXPECT_NE(by_id.find("\"wasted_steps\":5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Record arithmetic and the bounded event ring.
// ---------------------------------------------------------------------------

TEST(TxnLifeBookTest, RecordTracksLatencyComponentsAndQueueWait) {
  ManualClock clock(1000);
  TxnLifeBook::Options opt;
  opt.clock = &clock;
  TxnLifeBook book(opt);

  const TxnId t0(0);
  book.OnAdmit(t0, /*step=*/0);
  book.RecordQueueWait(t0, /*wait_ns=*/1234);
  book.OnStep(t0, 1);
  book.OnBlock(t0, 2, EntityId(7));
  book.OnWake(t0, 5);
  book.OnStep(t0, 5);
  clock.SetNanos(5000);
  book.OnCommit(t0, 6, /*pc=*/3);

  ASSERT_TRUE(book.Has(t0));
  const TxnTimelineRecord rec = book.RecordOf(t0, /*shard=*/2);
  EXPECT_EQ(rec.shard, 2u);
  EXPECT_TRUE(rec.committed);
  EXPECT_EQ(rec.admit_step, 0u);
  EXPECT_EQ(rec.first_step, 1u);
  EXPECT_EQ(rec.commit_step, 6u);
  EXPECT_EQ(rec.e2e_steps, 6u);
  EXPECT_EQ(rec.queue_wait_ns, 1234u);
  EXPECT_EQ(rec.lock_wait_steps, 3u);  // blocked at 2, woken at 5
  EXPECT_EQ(rec.exec_steps, 2u);
  EXPECT_EQ(rec.redo_steps, 0u);
  EXPECT_EQ(rec.blocks, 1u);
  EXPECT_EQ(rec.rollbacks, 0u);
  EXPECT_EQ(rec.admit_ns, 1000u);
  EXPECT_EQ(rec.commit_ns, 5000u);
  ASSERT_EQ(rec.events.size(), 5u);  // admit, first_step, block, wake, commit

  const std::string json = obs::TxnTimelineToJson(rec);
  EXPECT_NE(json.find("\"txn\":0"), std::string::npos);
  EXPECT_NE(json.find("\"committed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_ns\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"block\",\"step\":2"), std::string::npos);
  EXPECT_NE(json.find("\"entity\":7"), std::string::npos);
  EXPECT_NE(json.find("\"pc\":3"), std::string::npos);
}

TEST(TxnLifeBookTest, RingEvictionCountsDroppedAndMirrorsMetric) {
  MetricsRegistry registry;
  TxnLifeBook::Options opt;
  opt.ring_capacity = 2;
  TxnLifeBook book(opt);
  book.AttachMetrics(&registry, {{"shard", "0"}});

  book.OnAdmit(TxnId(0), 0);
  book.OnAdmit(TxnId(1), 1);
  EXPECT_EQ(book.dropped_events(), 0u);
  book.OnAdmit(TxnId(2), 2);  // evicts txn 0's admit event
  EXPECT_EQ(book.total_events(), 3u);
  EXPECT_EQ(book.dropped_events(), 1u);

  // The evicted transaction keeps its columns; only its ring window is
  // gone.
  EXPECT_TRUE(book.Has(TxnId(0)));
  EXPECT_TRUE(book.RecordOf(TxnId(0)).events.empty());
  EXPECT_EQ(book.RecordOf(TxnId(2)).events.size(), 1u);

  const auto snap = registry.Snapshot();
  const auto* dropped = snap.Find(obs::kTxnlifeDroppedTotal,
                                  {{"shard", "0"}});
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->counter, 1u);
  EXPECT_EQ(book.Digest(0).dropped_events, 1u);
}

TEST(TxnLifeBookTest, ZeroCapacityRingDropsEverythingButKeepsLedger) {
  TxnLifeBook::Options opt;
  opt.ring_capacity = 0;
  TxnLifeBook book(opt);
  book.OnAdmit(TxnId(0), 0);
  book.OnStep(TxnId(0), 1);
  book.OnRollback(TxnId(0), 2, RollbackCause::kTimeout, TxnId(),
                  /*cycle=*/0, /*cost=*/1);
  EXPECT_EQ(book.dropped_events(), book.total_events());
  EXPECT_TRUE(book.RecordOf(TxnId(0)).events.empty());
  // The ledger is column-backed, not ring-backed: attribution survives.
  const auto timeout = static_cast<std::size_t>(RollbackCause::kTimeout);
  EXPECT_EQ(book.wasted_by_cause()[timeout], 1u);
  EXPECT_EQ(book.rollbacks_by_cause()[timeout], 1u);
}

TEST(TxnLifeBookTest, AttachMetricsMaterializesEveryCauseSeriesAtZero) {
  // Every {cause=...} series must exist from the first scrape (CI greps
  // for them on a live run that may not have hit every cause yet).
  MetricsRegistry registry;
  TxnLifeBook book;
  book.AttachMetrics(&registry);
  const auto snap = registry.Snapshot();
  std::size_t wasted_series = 0;
  std::size_t cause_series = 0;
  for (const auto& m : snap.metrics) {
    if (m.name == obs::kWastedStepsTotal) ++wasted_series;
    if (m.name == obs::kRollbackCauseTotal) ++cause_series;
  }
  EXPECT_EQ(wasted_series, kNumRollbackCauses);
  EXPECT_EQ(cause_series, kNumRollbackCauses);
  ASSERT_NE(snap.Find(obs::kReworkRatioPpm, {}), nullptr);
  ASSERT_NE(snap.Find(obs::kTxnE2eSteps, {}), nullptr);
  ASSERT_NE(snap.Find(obs::kTxnQueueWaitNs, {}), nullptr);
}

}  // namespace
}  // namespace pardb

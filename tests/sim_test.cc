#include <set>

#include <gtest/gtest.h>

#include "sim/driver.h"
#include "sim/workload.h"

namespace pardb::sim {
namespace {

TEST(WorkloadTest, GeneratesValidPrograms) {
  WorkloadOptions opt;
  opt.num_entities = 16;
  opt.min_locks = 2;
  opt.max_locks = 5;
  opt.ops_per_entity = 2;
  WorkloadGenerator gen(opt, 1);
  for (int i = 0; i < 50; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_GE(p.value().NumLockRequests(), 2u);
    EXPECT_LE(p.value().NumLockRequests(), 5u);
    for (const txn::Op& op : p.value().ops()) {
      if (op.code == txn::OpCode::kLockExclusive ||
          op.code == txn::OpCode::kLockShared) {
        EXPECT_LT(op.entity.value(), 16u);
      }
    }
  }
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadOptions opt;
  WorkloadGenerator a(opt, 9), b(opt, 9), c(opt, 10);
  bool differs = false;
  for (int i = 0; i < 20; ++i) {
    auto pa = a.Next();
    auto pb = b.Next();
    auto pc = c.Next();
    ASSERT_TRUE(pa.ok());
    ASSERT_TRUE(pb.ok());
    ASSERT_TRUE(pc.ok());
    EXPECT_EQ(pa.value().ToString(), pb.value().ToString());
    if (pa.value().ToString() != pc.value().ToString()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadTest, ClusteredPatternScoresZeroSpread) {
  WorkloadOptions opt;
  opt.pattern = WritePattern::kClustered;
  WorkloadGenerator gen(opt, 3);
  for (int i = 0; i < 20; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().WriteSpreadScore(), 0u) << p.value().ToString();
  }
}

TEST(WorkloadTest, ThreePhasePatternIsThreePhase) {
  WorkloadOptions opt;
  opt.pattern = WritePattern::kThreePhase;
  WorkloadGenerator gen(opt, 4);
  for (int i = 0; i < 20; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(p.value().IsThreePhase()) << p.value().ToString();
  }
}

TEST(WorkloadTest, ScatteredPatternSpreadsWrites) {
  WorkloadOptions opt;
  opt.pattern = WritePattern::kScattered;
  opt.min_locks = 4;
  opt.max_locks = 8;
  opt.ops_per_entity = 3;
  WorkloadGenerator gen(opt, 5);
  std::uint64_t total_spread = 0;
  for (int i = 0; i < 30; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok());
    total_spread += p.value().WriteSpreadScore();
  }
  EXPECT_GT(total_spread, 0u);
}

TEST(WorkloadTest, SharedFractionProducesSharedLocks) {
  WorkloadOptions opt;
  opt.shared_fraction = 1.0;
  WorkloadGenerator gen(opt, 6);
  auto p = gen.Next();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().CountOps(txn::OpCode::kLockExclusive), 0u);
  EXPECT_GT(p.value().CountOps(txn::OpCode::kLockShared), 0u);
  EXPECT_EQ(p.value().CountOps(txn::OpCode::kWrite), 0u);
}

TEST(WorkloadTest, SortedEntitiesLockInOrder) {
  WorkloadOptions opt;
  opt.sorted_entities = true;
  WorkloadGenerator gen(opt, 7);
  for (int i = 0; i < 20; ++i) {
    auto p = gen.Next();
    ASSERT_TRUE(p.ok());
    EntityId prev;
    for (const txn::Op& op : p.value().ops()) {
      if (op.code == txn::OpCode::kLockExclusive ||
          op.code == txn::OpCode::kLockShared) {
        if (prev.valid()) {
          EXPECT_LT(prev, op.entity);
        }
        prev = op.entity;
      }
    }
  }
}

TEST(WorkloadTest, InvalidLockRangeRejected) {
  WorkloadOptions opt;
  opt.min_locks = 5;
  opt.max_locks = 2;
  WorkloadGenerator gen(opt, 1);
  EXPECT_EQ(gen.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(SimDriverTest, SmallContentedRunCompletesSerializably) {
  SimOptions opt;
  opt.workload.num_entities = 8;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.concurrency = 4;
  opt.total_txns = 40;
  opt.seed = 11;
  auto report = RunSimulation(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->committed, 40u);
  EXPECT_TRUE(report->serializable);
  EXPECT_GT(report->metrics.ops_executed, 0u);
  // Incremental generation: programs are drawn one admission at a time,
  // never batch-materialized ahead of the engine.
  EXPECT_EQ(report->peak_materialized_programs, 1u);
}

TEST(SimDriverTest, DeterministicReports) {
  SimOptions opt;
  opt.workload.num_entities = 6;
  opt.concurrency = 4;
  opt.total_txns = 30;
  opt.seed = 13;
  auto a = RunSimulation(opt);
  auto b = RunSimulation(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.ops_executed, b->metrics.ops_executed);
  EXPECT_EQ(a->metrics.deadlocks, b->metrics.deadlocks);
  EXPECT_EQ(a->metrics.wasted_ops, b->metrics.wasted_ops);
  EXPECT_EQ(a->metrics.commits, b->metrics.commits);
}

TEST(SimDriverTest, NonPowerOfTwoHubSnapshotPeriodRoundsUpAndPublishes) {
  // A period of 100 used to be masked as-is (100 & 99 is not a valid
  // cadence mask); the driver now rounds it up to 128 internally.
  obs::LiveHub hub;
  SimOptions opt;
  opt.workload.num_entities = 8;
  opt.workload.min_locks = 2;
  opt.workload.max_locks = 4;
  opt.concurrency = 4;
  opt.total_txns = 40;
  opt.seed = 11;
  opt.hub = &hub;
  opt.hub_snapshot_period = 100;
  auto report = RunSimulation(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->committed, 40u);
  EXPECT_EQ(hub.Snapshots().size(), 1u);  // sim publishes as shard 0
}

TEST(SimDriverTest, SortedEntitiesNeverDeadlock) {
  // The hierarchical-order control: deadlock-free by construction.
  SimOptions opt;
  opt.workload.num_entities = 8;
  opt.workload.sorted_entities = true;
  opt.concurrency = 6;
  opt.total_txns = 60;
  opt.seed = 17;
  auto report = RunSimulation(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->metrics.deadlocks, 0u);
  EXPECT_EQ(report->metrics.rollbacks, 0u);
}

TEST(SimDriverTest, ContentionCausesDeadlocks) {
  SimOptions opt;
  opt.workload.num_entities = 4;  // tiny database, heavy contention
  opt.workload.min_locks = 3;
  opt.workload.max_locks = 4;
  opt.concurrency = 6;
  opt.total_txns = 60;
  opt.seed = 19;
  auto report = RunSimulation(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->metrics.deadlocks, 0u);
  EXPECT_TRUE(report->serializable);
}

TEST(SimDriverTest, ReportToStringMentionsKeyFields) {
  SimOptions opt;
  opt.total_txns = 5;
  opt.concurrency = 2;
  auto report = RunSimulation(opt);
  ASSERT_TRUE(report.ok());
  std::string s = report->ToString();
  EXPECT_NE(s.find("committed=5"), std::string::npos);
  EXPECT_NE(s.find("serializable=yes"), std::string::npos);
}

}  // namespace
}  // namespace pardb::sim

# Empty compiler generated dependencies file for pardb_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pardb_sim.dir/driver.cc.o"
  "CMakeFiles/pardb_sim.dir/driver.cc.o.d"
  "CMakeFiles/pardb_sim.dir/scenario.cc.o"
  "CMakeFiles/pardb_sim.dir/scenario.cc.o.d"
  "CMakeFiles/pardb_sim.dir/workload.cc.o"
  "CMakeFiles/pardb_sim.dir/workload.cc.o.d"
  "libpardb_sim.a"
  "libpardb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpardb_sim.a"
)

file(REMOVE_RECURSE
  "libpardb_common.a"
)

# Empty dependencies file for pardb_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pardb_common.dir/flags.cc.o"
  "CMakeFiles/pardb_common.dir/flags.cc.o.d"
  "CMakeFiles/pardb_common.dir/logging.cc.o"
  "CMakeFiles/pardb_common.dir/logging.cc.o.d"
  "CMakeFiles/pardb_common.dir/random.cc.o"
  "CMakeFiles/pardb_common.dir/random.cc.o.d"
  "CMakeFiles/pardb_common.dir/status.cc.o"
  "CMakeFiles/pardb_common.dir/status.cc.o.d"
  "libpardb_common.a"
  "libpardb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rollback/mcs_strategy.cc" "src/rollback/CMakeFiles/pardb_rollback.dir/mcs_strategy.cc.o" "gcc" "src/rollback/CMakeFiles/pardb_rollback.dir/mcs_strategy.cc.o.d"
  "/root/repo/src/rollback/sdg.cc" "src/rollback/CMakeFiles/pardb_rollback.dir/sdg.cc.o" "gcc" "src/rollback/CMakeFiles/pardb_rollback.dir/sdg.cc.o.d"
  "/root/repo/src/rollback/sdg_strategy.cc" "src/rollback/CMakeFiles/pardb_rollback.dir/sdg_strategy.cc.o" "gcc" "src/rollback/CMakeFiles/pardb_rollback.dir/sdg_strategy.cc.o.d"
  "/root/repo/src/rollback/strategy.cc" "src/rollback/CMakeFiles/pardb_rollback.dir/strategy.cc.o" "gcc" "src/rollback/CMakeFiles/pardb_rollback.dir/strategy.cc.o.d"
  "/root/repo/src/rollback/total_restart.cc" "src/rollback/CMakeFiles/pardb_rollback.dir/total_restart.cc.o" "gcc" "src/rollback/CMakeFiles/pardb_rollback.dir/total_restart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pardb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pardb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/pardb_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pardb_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

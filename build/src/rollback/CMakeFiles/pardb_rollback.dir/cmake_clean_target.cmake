file(REMOVE_RECURSE
  "libpardb_rollback.a"
)

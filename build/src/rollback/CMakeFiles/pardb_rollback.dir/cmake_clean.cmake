file(REMOVE_RECURSE
  "CMakeFiles/pardb_rollback.dir/mcs_strategy.cc.o"
  "CMakeFiles/pardb_rollback.dir/mcs_strategy.cc.o.d"
  "CMakeFiles/pardb_rollback.dir/sdg.cc.o"
  "CMakeFiles/pardb_rollback.dir/sdg.cc.o.d"
  "CMakeFiles/pardb_rollback.dir/sdg_strategy.cc.o"
  "CMakeFiles/pardb_rollback.dir/sdg_strategy.cc.o.d"
  "CMakeFiles/pardb_rollback.dir/strategy.cc.o"
  "CMakeFiles/pardb_rollback.dir/strategy.cc.o.d"
  "CMakeFiles/pardb_rollback.dir/total_restart.cc.o"
  "CMakeFiles/pardb_rollback.dir/total_restart.cc.o.d"
  "libpardb_rollback.a"
  "libpardb_rollback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_rollback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

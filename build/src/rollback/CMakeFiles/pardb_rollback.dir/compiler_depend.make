# Empty compiler generated dependencies file for pardb_rollback.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pardb_storage.dir/entity_store.cc.o"
  "CMakeFiles/pardb_storage.dir/entity_store.cc.o.d"
  "libpardb_storage.a"
  "libpardb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpardb_storage.a"
)

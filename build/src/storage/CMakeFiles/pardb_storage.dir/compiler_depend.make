# Empty compiler generated dependencies file for pardb_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pardb_dist.dir/distributed.cc.o"
  "CMakeFiles/pardb_dist.dir/distributed.cc.o.d"
  "libpardb_dist.a"
  "libpardb_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pardb_dist.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpardb_dist.a"
)

# Empty dependencies file for pardb_txn.
# This may be replaced when dependencies are built.

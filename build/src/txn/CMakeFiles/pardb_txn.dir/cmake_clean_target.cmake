file(REMOVE_RECURSE
  "libpardb_txn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pardb_txn.dir/optimizer.cc.o"
  "CMakeFiles/pardb_txn.dir/optimizer.cc.o.d"
  "CMakeFiles/pardb_txn.dir/program.cc.o"
  "CMakeFiles/pardb_txn.dir/program.cc.o.d"
  "CMakeFiles/pardb_txn.dir/program_io.cc.o"
  "CMakeFiles/pardb_txn.dir/program_io.cc.o.d"
  "libpardb_txn.a"
  "libpardb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/optimizer.cc" "src/txn/CMakeFiles/pardb_txn.dir/optimizer.cc.o" "gcc" "src/txn/CMakeFiles/pardb_txn.dir/optimizer.cc.o.d"
  "/root/repo/src/txn/program.cc" "src/txn/CMakeFiles/pardb_txn.dir/program.cc.o" "gcc" "src/txn/CMakeFiles/pardb_txn.dir/program.cc.o.d"
  "/root/repo/src/txn/program_io.cc" "src/txn/CMakeFiles/pardb_txn.dir/program_io.cc.o" "gcc" "src/txn/CMakeFiles/pardb_txn.dir/program_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pardb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/pardb_lock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/pardb_graph.dir/digraph.cc.o"
  "CMakeFiles/pardb_graph.dir/digraph.cc.o.d"
  "CMakeFiles/pardb_graph.dir/undirected.cc.o"
  "CMakeFiles/pardb_graph.dir/undirected.cc.o.d"
  "libpardb_graph.a"
  "libpardb_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

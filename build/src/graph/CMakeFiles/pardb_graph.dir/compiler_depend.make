# Empty compiler generated dependencies file for pardb_graph.
# This may be replaced when dependencies are built.

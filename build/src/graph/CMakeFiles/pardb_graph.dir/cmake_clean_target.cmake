file(REMOVE_RECURSE
  "libpardb_graph.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pardb_lock.dir/lock_manager.cc.o"
  "CMakeFiles/pardb_lock.dir/lock_manager.cc.o.d"
  "libpardb_lock.a"
  "libpardb_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

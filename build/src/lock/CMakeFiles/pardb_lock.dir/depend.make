# Empty dependencies file for pardb_lock.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpardb_lock.a"
)

file(REMOVE_RECURSE
  "libpardb_core.a"
)

# Empty dependencies file for pardb_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/pardb_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/pardb_core.dir/engine.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/pardb_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/pardb_core.dir/trace.cc.o.d"
  "/root/repo/src/core/vertex_cut.cc" "src/core/CMakeFiles/pardb_core.dir/vertex_cut.cc.o" "gcc" "src/core/CMakeFiles/pardb_core.dir/vertex_cut.cc.o.d"
  "/root/repo/src/core/victim_policy.cc" "src/core/CMakeFiles/pardb_core.dir/victim_policy.cc.o" "gcc" "src/core/CMakeFiles/pardb_core.dir/victim_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pardb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pardb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pardb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/pardb_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/rollback/CMakeFiles/pardb_rollback.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pardb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pardb_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/pardb_core.dir/engine.cc.o"
  "CMakeFiles/pardb_core.dir/engine.cc.o.d"
  "CMakeFiles/pardb_core.dir/trace.cc.o"
  "CMakeFiles/pardb_core.dir/trace.cc.o.d"
  "CMakeFiles/pardb_core.dir/vertex_cut.cc.o"
  "CMakeFiles/pardb_core.dir/vertex_cut.cc.o.d"
  "CMakeFiles/pardb_core.dir/victim_policy.cc.o"
  "CMakeFiles/pardb_core.dir/victim_policy.cc.o.d"
  "libpardb_core.a"
  "libpardb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpardb_analysis.a"
)

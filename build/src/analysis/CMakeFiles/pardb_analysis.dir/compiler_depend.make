# Empty compiler generated dependencies file for pardb_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pardb_analysis.dir/history.cc.o"
  "CMakeFiles/pardb_analysis.dir/history.cc.o.d"
  "libpardb_analysis.a"
  "libpardb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/transaction_design.dir/transaction_design.cpp.o"
  "CMakeFiles/transaction_design.dir/transaction_design.cpp.o.d"
  "transaction_design"
  "transaction_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

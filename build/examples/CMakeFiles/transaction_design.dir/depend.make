# Empty dependencies file for transaction_design.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/figures_walkthrough.dir/figures_walkthrough.cpp.o"
  "CMakeFiles/figures_walkthrough.dir/figures_walkthrough.cpp.o.d"
  "figures_walkthrough"
  "figures_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

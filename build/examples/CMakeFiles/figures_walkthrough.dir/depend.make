# Empty dependencies file for figures_walkthrough.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pardb.dir/pardb_cli.cc.o"
  "CMakeFiles/pardb.dir/pardb_cli.cc.o.d"
  "pardb"
  "pardb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pardb.
# This may be replaced when dependencies are built.

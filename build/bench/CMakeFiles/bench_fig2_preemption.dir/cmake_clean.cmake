file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_preemption.dir/bench_fig2_preemption.cc.o"
  "CMakeFiles/bench_fig2_preemption.dir/bench_fig2_preemption.cc.o.d"
  "bench_fig2_preemption"
  "bench_fig2_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

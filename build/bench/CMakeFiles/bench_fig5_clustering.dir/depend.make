# Empty dependencies file for bench_fig5_clustering.
# This may be replaced when dependencies are built.

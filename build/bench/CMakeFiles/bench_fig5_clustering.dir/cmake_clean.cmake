file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_clustering.dir/bench_fig5_clustering.cc.o"
  "CMakeFiles/bench_fig5_clustering.dir/bench_fig5_clustering.cc.o.d"
  "bench_fig5_clustering"
  "bench_fig5_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

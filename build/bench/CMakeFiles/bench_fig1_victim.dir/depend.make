# Empty dependencies file for bench_fig1_victim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_victim.dir/bench_fig1_victim.cc.o"
  "CMakeFiles/bench_fig1_victim.dir/bench_fig1_victim.cc.o.d"
  "bench_fig1_victim"
  "bench_fig1_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_partial_vs_total.cc" "bench/CMakeFiles/bench_partial_vs_total.dir/bench_partial_vs_total.cc.o" "gcc" "bench/CMakeFiles/bench_partial_vs_total.dir/bench_partial_vs_total.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/pardb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pardb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pardb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pardb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/rollback/CMakeFiles/pardb_rollback.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pardb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/pardb_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pardb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pardb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pardb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_partial_vs_total.
# This may be replaced when dependencies are built.

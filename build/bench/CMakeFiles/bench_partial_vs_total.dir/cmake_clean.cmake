file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_vs_total.dir/bench_partial_vs_total.cc.o"
  "CMakeFiles/bench_partial_vs_total.dir/bench_partial_vs_total.cc.o.d"
  "bench_partial_vs_total"
  "bench_partial_vs_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_vs_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

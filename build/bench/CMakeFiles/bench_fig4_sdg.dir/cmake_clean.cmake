file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sdg.dir/bench_fig4_sdg.cc.o"
  "CMakeFiles/bench_fig4_sdg.dir/bench_fig4_sdg.cc.o.d"
  "bench_fig4_sdg"
  "bench_fig4_sdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_mcs_space.dir/bench_thm3_mcs_space.cc.o"
  "CMakeFiles/bench_thm3_mcs_space.dir/bench_thm3_mcs_space.cc.o.d"
  "bench_thm3_mcs_space"
  "bench_thm3_mcs_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_mcs_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_thm3_mcs_space.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_shared.dir/bench_fig3_shared.cc.o"
  "CMakeFiles/bench_fig3_shared.dir/bench_fig3_shared.cc.o.d"
  "bench_fig3_shared"
  "bench_fig3_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

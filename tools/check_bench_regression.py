#!/usr/bin/env python3
"""Gate on bench_parallel_scaling regressions against checked-in baselines.

Wall-clock throughput is machine-dependent, so the scaling check compares
the machine-normalized signal instead: speedup_vs_1 per shard count. A
current speedup more than --max-speedup-drop-pct below the baseline's
fails the gate. The deterministic engine results (committed transactions
per shard count) must match the baseline exactly — any drift there is a
behavior change, not noise. The telemetry-overhead verdict is absolute:
overhead_pct must stay within --max-overhead-pct.

Usage:
  check_bench_regression.py \
      --current BENCH_parallel.json \
      --baseline bench/baselines/BENCH_parallel.json \
      --current-overhead BENCH_parallel_overhead.json \
      [--max-speedup-drop-pct 15] [--max-overhead-pct 5]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def check_scaling(current, baseline, max_drop_pct):
    failures = []
    base_by_shards = {row["shards"]: row for row in baseline}
    for row in current:
        shards = row["shards"]
        base = base_by_shards.get(shards)
        if base is None:
            continue
        committed = row["report"]["committed"]
        base_committed = base["report"]["committed"]
        if committed != base_committed:
            failures.append(
                f"shards={shards}: committed {committed} != baseline "
                f"{base_committed} (deterministic result drifted)")
        if shards == 1:
            continue  # speedup_vs_1 is 1.0 by construction
        speedup = row["speedup_vs_1"]
        base_speedup = base["speedup_vs_1"]
        floor = base_speedup * (1.0 - max_drop_pct / 100.0)
        verdict = "ok" if speedup >= floor else "FAIL"
        print(f"shards={shards}: speedup {speedup:.3f} vs baseline "
              f"{base_speedup:.3f} (floor {floor:.3f}) {verdict}")
        if speedup < floor:
            failures.append(
                f"shards={shards}: speedup {speedup:.3f} dropped more than "
                f"{max_drop_pct}% below baseline {base_speedup:.3f}")
    return failures


def check_overhead(overhead, max_overhead_pct):
    pct = overhead["overhead_pct"]
    print(f"telemetry overhead {pct:.2f}% (budget {max_overhead_pct}%)")
    if pct > max_overhead_pct:
        return [f"telemetry overhead {pct:.2f}% exceeds budget "
                f"{max_overhead_pct}%"]
    return []


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current-overhead")
    ap.add_argument("--max-speedup-drop-pct", type=float, default=15.0)
    ap.add_argument("--max-overhead-pct", type=float, default=5.0)
    args = ap.parse_args()

    failures = check_scaling(load(args.current), load(args.baseline),
                             args.max_speedup_drop_pct)
    if args.current_overhead:
        failures += check_overhead(load(args.current_overhead),
                                   args.max_overhead_pct)

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate on bench_parallel_scaling regressions against checked-in baselines.

Wall-clock throughput is machine-dependent, so the scaling check compares
the machine-normalized signal instead: speedup_vs_1 per shard count. A
current speedup more than --max-speedup-drop-pct below the baseline's
fails the gate. The deterministic engine results (committed transactions
per shard count) must match the baseline exactly — any drift there is a
behavior change, not noise. The telemetry-overhead verdicts are absolute:
overhead_pct (metric probes vs bare), timeline_overhead_pct (the D13
lifecycle timelines vs the instrumented run) and journal_overhead_pct
(the D14 decision journal vs the txnlife run) must each stay within
--max-overhead-pct.

On any report-identity failure (pipeline vs batch, or cross-shard across
worker counts) the gate also prints the first differing JSON key path and
both values, read from the mismatch side-files the bench leaves on disk;
the exit code contract (0 pass / 1 fail) is unchanged.

The skew check gates the scheduler comparison (BENCH_parallel_skew.json):
committed counts must match the baseline exactly, and on the skewed
(zipf 0.9) config the timeslice scheduler's virtual-makespan speedup over
run-to-completion must stay at or above --min-skew-speedup. Virtual
makespans are deterministic, so they are compared exactly; wall-clock
fields in the skew file are informational only. On the uniform (zipf 0)
config the timeslice scheduler must not fall below run-to-completion by
more than --max-uniform-drop-pct of wall time (quantum bookkeeping
budget) — skipped when the host reports a single CPU, where elapsed
times are too noisy relative to the tiny absolute difference.

The pipeline check gates streaming admission (BENCH_parallel_pipeline.json):
the pipelined run's report JSON must be byte-identical to the batch run's
(the determinism contract), committed counts must match the baseline
exactly, and the deterministic overlap fraction — the provable share of
generation work emitted after execution started — must stay at or above
--min-overlap-fraction and must not drift from the baseline. The
wall-clock speedup over batch is gated at --min-pipeline-speedup only on
hosts with >= 4 CPUs: the producer needs a core of its own, and CI
runners below that report pure noise (informational there).

The cross-shard check gates locks-mode execution (BENCH_cross_shard.json):
every sweep point's report must be byte-identical across repeated runs and
worker counts, the merged commit log must stay conflict-serializable, the
deterministic committed/goodput values must match the baseline exactly,
and goodput at the 5% cross-shard point must retain at least
--min-cross-goodput of the shard-local (0%) goodput — coordination cost
is budgeted, not unbounded.

The hotpath check gates the single-engine rewrite (BENCH_hotpath.json):
deterministic op/step counts (lock micro ops, rollback-pair deadlock and
rollback counts, end-to-end committed/steps/rollbacks, audit steps) must
match the baseline exactly, the allocation counters must be exactly zero
(allocs_per_op on the lock/release micro and allocs_per_step on the warm
engine audit — the D15 no-heap-churn invariant), and end-to-end
throughput must stay at or above --min-hotpath-txns-per-sec (default
210000: 10x the pinned ~21k pre-rewrite single-shard number). Wall-clock
rates other than that floor are informational.

When the file carries an enabled "compile" section (the D16 µop cache;
absent pre-D16 and disabled on the --no-compile-cache ablation leg), the
cache population counters (programs, compiles, hits, compiled_bytes) must
match the baseline exactly — the pinned program set is identical on every
host — and the cold lowering cost must stay at or below
--max-compile-us-per-program (default 5.0 µs per unique program; warm
cache hits are printed for reference, not gated).

Usage:
  check_bench_regression.py \
      --current BENCH_parallel.json \
      --baseline bench/baselines/BENCH_parallel.json \
      --current-overhead BENCH_parallel_overhead.json \
      --current-skew BENCH_parallel_skew.json \
      --skew-baseline bench/baselines/BENCH_parallel_skew.json \
      --current-pipeline BENCH_parallel_pipeline.json \
      --pipeline-baseline bench/baselines/BENCH_parallel_pipeline.json \
      --current-cross-shard BENCH_cross_shard.json \
      --cross-shard-baseline bench/baselines/BENCH_cross_shard.json \
      --current-hotpath BENCH_hotpath.json \
      --hotpath-baseline bench/baselines/BENCH_hotpath.json \
      [--max-speedup-drop-pct 15] [--max-overhead-pct 5] \
      [--min-skew-speedup 1.3] [--max-uniform-drop-pct 5] \
      [--min-overlap-fraction 0.8] [--min-pipeline-speedup 1.25] \
      [--min-cross-goodput 0.8] [--min-hotpath-txns-per-sec 210000]
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def first_json_divergence(a, b, path="$"):
    """First key path (dict keys sorted, list indices in order) where the
    two parsed JSON documents differ, as (path, value_a, value_b); None
    when identical. '<absent>' marks a key/index present on one side only.
    """
    if type(a) is not type(b):
        return (path, a, b)
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            sub = f"{path}.{k}"
            if k not in a:
                return (sub, "<absent>", b[k])
            if k not in b:
                return (sub, a[k], "<absent>")
            hit = first_json_divergence(a[k], b[k], sub)
            if hit:
                return hit
        return None
    if isinstance(a, list):
        for i in range(max(len(a), len(b))):
            sub = f"{path}[{i}]"
            if i >= len(a):
                return (sub, "<absent>", b[i])
            if i >= len(b):
                return (sub, a[i], "<absent>")
            hit = first_json_divergence(a[i], b[i], sub)
            if hit:
                return hit
        return None
    if a != b:
        return (path, a, b)
    return None


def describe_report_mismatch(label, path_a, path_b, side_a, side_b):
    """On a report-identity failure, pin the first differing JSON key path
    and both values (the benches leave the two sides on disk). Diagnostic
    output only — the failure itself is still reported by the caller, so
    the exit-code contract is unchanged."""
    try:
        a = load(path_a)
        b = load(path_b)
    except (OSError, ValueError):
        print(f"{label}: report sides not on disk "
              f"({path_a}, {path_b}); cannot pin the differing key",
              file=sys.stderr)
        return
    hit = first_json_divergence(a, b)
    if hit is None:
        print(f"{label}: recorded report sides parse identical "
              f"(whitespace-only difference?)", file=sys.stderr)
        return
    where, va, vb = hit
    print(f"{label}: first differing key {where}: "
          f"{side_a}={va!r}  {side_b}={vb!r}", file=sys.stderr)


def check_scaling(current, baseline, max_drop_pct):
    failures = []
    base_by_shards = {row["shards"]: row for row in baseline}
    for row in current:
        shards = row["shards"]
        base = base_by_shards.get(shards)
        if base is None:
            continue
        committed = row["report"]["committed"]
        base_committed = base["report"]["committed"]
        if committed != base_committed:
            failures.append(
                f"shards={shards}: committed {committed} != baseline "
                f"{base_committed} (deterministic result drifted)")
        if shards == 1:
            continue  # speedup_vs_1 is 1.0 by construction
        speedup = row["speedup_vs_1"]
        base_speedup = base["speedup_vs_1"]
        floor = base_speedup * (1.0 - max_drop_pct / 100.0)
        verdict = "ok" if speedup >= floor else "FAIL"
        print(f"shards={shards}: speedup {speedup:.3f} vs baseline "
              f"{base_speedup:.3f} (floor {floor:.3f}) {verdict}")
        if speedup < floor:
            failures.append(
                f"shards={shards}: speedup {speedup:.3f} dropped more than "
                f"{max_drop_pct}% below baseline {base_speedup:.3f}")
    return failures


def check_skew(current, baseline, min_skew_speedup, max_uniform_drop_pct):
    failures = []
    key = lambda row: (row["zipf_theta"], row["scheduler"])
    base_by_key = {key(row): row for row in baseline}
    rows_by_key = {key(row): row for row in current}
    for row in current:
        base = base_by_key.get(key(row))
        if base is None:
            continue
        for field in ("committed", "virtual_makespan_steps"):
            if row[field] != base[field]:
                failures.append(
                    f"skew {key(row)}: {field} {row[field]} != baseline "
                    f"{base[field]} (deterministic result drifted)")
    skewed = rows_by_key.get((0.9, "timeslice"))
    if skewed is None:
        failures.append("skew: missing (zipf 0.9, timeslice) row")
    else:
        speedup = skewed["virtual_speedup_vs_rtc"]
        verdict = "ok" if speedup >= min_skew_speedup else "FAIL"
        print(f"skew zipf=0.9: virtual speedup {speedup:.3f} "
              f"(floor {min_skew_speedup}) {verdict}")
        if speedup < min_skew_speedup:
            failures.append(
                f"skew: timeslice virtual speedup {speedup:.3f} below "
                f"floor {min_skew_speedup}")
    rtc = rows_by_key.get((0.0, "rtc"))
    ts = rows_by_key.get((0.0, "timeslice"))
    if rtc and ts and rtc["elapsed_seconds"] > 0:
        drop_pct = (ts["elapsed_seconds"] / rtc["elapsed_seconds"] - 1.0) * 100
        if os.cpu_count() and os.cpu_count() > 1:
            verdict = "ok" if drop_pct <= max_uniform_drop_pct else "FAIL"
            print(f"skew zipf=0.0: timeslice wall overhead {drop_pct:+.1f}% "
                  f"(budget {max_uniform_drop_pct}%) {verdict}")
            if drop_pct > max_uniform_drop_pct:
                failures.append(
                    f"skew: uniform-config timeslice wall overhead "
                    f"{drop_pct:+.1f}% exceeds {max_uniform_drop_pct}%")
        else:
            print(f"skew zipf=0.0: timeslice wall overhead {drop_pct:+.1f}% "
                  f"(informational; single-CPU host, gate skipped)")
    return failures


def check_pipeline(current, baseline, min_overlap, min_speedup):
    failures = []
    if not current.get("report_json_identical_to_batch", False):
        failures.append(
            "pipeline: pipelined report JSON differs from batch "
            "(determinism contract broken)")
        describe_report_mismatch(
            "pipeline",
            "BENCH_parallel_pipeline_report_batch.json",
            "BENCH_parallel_pipeline_report_pipelined.json",
            "batch", "pipelined")
    for field in ("committed",):
        cur = current["pipelined"][field]
        base = baseline["pipelined"][field] if baseline else cur
        if cur != base:
            failures.append(
                f"pipeline: {field} {cur} != baseline {base} "
                f"(deterministic result drifted)")
    overlap = current["pipelined"]["overlap_fraction"]
    verdict = "ok" if overlap >= min_overlap else "FAIL"
    print(f"pipeline: overlap fraction {overlap:.3f} "
          f"(floor {min_overlap}) {verdict}")
    if overlap < min_overlap:
        failures.append(
            f"pipeline: overlap fraction {overlap:.3f} below floor "
            f"{min_overlap}")
    if baseline:
        base_overlap = baseline["pipelined"]["overlap_fraction"]
        if overlap != base_overlap:
            failures.append(
                f"pipeline: overlap fraction {overlap} != baseline "
                f"{base_overlap} (routing or capacity drifted)")
    speedup = current["speedup_vs_batch"]
    if os.cpu_count() and os.cpu_count() >= 4:
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(f"pipeline: wall speedup vs batch {speedup:.3f} "
              f"(floor {min_speedup}) {verdict}")
        if speedup < min_speedup:
            failures.append(
                f"pipeline: wall speedup {speedup:.3f} below floor "
                f"{min_speedup}")
    else:
        print(f"pipeline: wall speedup vs batch {speedup:.3f} "
              f"(informational; host has < 4 CPUs, gate skipped)")
    return failures


def check_cross_shard(current, baseline, min_goodput_ratio):
    failures = []
    base_by_frac = {row["cross_shard_fraction"]: row for row in baseline}
    goodput_at = {}
    for row in current:
        frac = row["cross_shard_fraction"]
        goodput_at[frac] = row["goodput"]
        if not row.get("report_deterministic", False):
            failures.append(
                f"cross-shard frac={frac}: report not byte-identical across "
                f"runs/worker counts (determinism contract broken)")
            describe_report_mismatch(
                f"cross-shard frac={frac}",
                "BENCH_cross_shard_report_expected.json",
                "BENCH_cross_shard_report_actual.json",
                "expected", "actual")
        if not row["report"]["global_serializable"]:
            failures.append(
                f"cross-shard frac={frac}: merged commit log not "
                f"conflict-serializable")
        base = base_by_frac.get(frac)
        if base is None:
            continue
        for field in ("committed", "goodput"):
            if row["report"][field] != base["report"][field]:
                failures.append(
                    f"cross-shard frac={frac}: {field} {row['report'][field]} "
                    f"!= baseline {base['report'][field]} "
                    f"(deterministic result drifted)")
    # Cross-shard coordination must not crater goodput: the 5% point has to
    # retain at least min_goodput_ratio of the shard-local (0%) goodput.
    if 0.0 in goodput_at and 0.05 in goodput_at and goodput_at[0.0] > 0:
        ratio = goodput_at[0.05] / goodput_at[0.0]
        verdict = "ok" if ratio >= min_goodput_ratio else "FAIL"
        print(f"cross-shard: goodput@0.05 / goodput@0 = {ratio:.3f} "
              f"(floor {min_goodput_ratio}) {verdict}")
        if ratio < min_goodput_ratio:
            failures.append(
                f"cross-shard: goodput ratio {ratio:.3f} below floor "
                f"{min_goodput_ratio}")
    else:
        failures.append("cross-shard: missing 0 or 0.05 fraction row")
    return failures


def check_hotpath(current, baseline, min_txns_per_sec,
                  max_compile_us_per_program):
    failures = []
    # Deterministic counts: identical on every host and on both sides of
    # the rewrite (the workload, seeds and schedulers are pinned). Any
    # drift is a behavior change, not noise.
    deterministic = [
        ("lock_release", "ops"),
        ("rollback", "pairs"),
        ("rollback", "rollbacks"),
        ("rollback", "deadlocks"),
        ("end_to_end", "txns"),
        ("end_to_end", "committed"),
        ("end_to_end", "steps"),
        ("end_to_end", "rollbacks"),
        ("steady_state", "steps"),
    ]
    for section, field in deterministic:
        cur = current[section][field]
        base = baseline[section][field] if baseline else cur
        if cur != base:
            failures.append(
                f"hotpath: {section}.{field} {cur} != baseline {base} "
                f"(deterministic result drifted)")
    # The D15 invariant: the warm grant/release fast path performs zero
    # heap allocations — gated exactly, not within a tolerance.
    for section, field in (("lock_release", "allocs_per_op"),
                           ("steady_state", "allocs_per_step")):
        val = current[section][field]
        verdict = "ok" if val == 0 else "FAIL"
        print(f"hotpath: {section}.{field} = {val} (must be exactly 0) "
              f"{verdict}")
        if val != 0:
            failures.append(
                f"hotpath: {section}.{field} = {val}, fast path allocates "
                f"(must be exactly 0)")
    tps = current["end_to_end"]["txns_per_second"]
    verdict = "ok" if tps >= min_txns_per_sec else "FAIL"
    print(f"hotpath: end-to-end {tps:.0f} txns/s "
          f"(floor {min_txns_per_sec:.0f}) {verdict}")
    if tps < min_txns_per_sec:
        failures.append(
            f"hotpath: end-to-end {tps:.0f} txns/s below floor "
            f"{min_txns_per_sec:.0f}")
    for section, field in (("lock_release", "ops_per_second"),
                           ("rollback", "rollbacks_per_second")):
        base = baseline[section][field] if baseline else 0
        print(f"hotpath: {section}.{field} = {current[section][field]:.0f} "
              f"(baseline {base:.0f}, informational)")
    # D16 compile gates. The "compile" section is absent from pre-D16 files
    # and disabled (enabled=0) on the --no-compile-cache ablation leg; both
    # skip the cost ceiling. When enabled, the cache population counters are
    # deterministic (same pinned program set on every host) and the cold
    # lowering cost per unique program is capped.
    comp = current.get("compile")
    if comp and comp.get("enabled"):
        base_comp = (baseline or {}).get("compile")
        if base_comp and base_comp.get("enabled"):
            for field in ("programs", "compiles", "hits", "compiled_bytes"):
                if comp[field] != base_comp[field]:
                    failures.append(
                        f"hotpath: compile.{field} {comp[field]} != baseline "
                        f"{base_comp[field]} (deterministic result drifted)")
        us = comp["us_per_program"]
        verdict = "ok" if us <= max_compile_us_per_program else "FAIL"
        print(f"hotpath: compile {us:.3f} us/program cold "
              f"(ceiling {max_compile_us_per_program}) {verdict}, "
              f"{comp['hit_us_per_program']:.3f} us/program on hits, "
              f"{comp['compiles']} compiles / {comp['hits']} hits over "
              f"{comp['programs']} programs")
        if us > max_compile_us_per_program:
            failures.append(
                f"hotpath: compile cost {us:.3f} us/program above ceiling "
                f"{max_compile_us_per_program}")
    else:
        print("hotpath: compile cache disabled or absent; skipping "
              "compile-cost gates")
    return failures


def check_overhead(overhead, max_overhead_pct):
    failures = []
    pct = overhead["overhead_pct"]
    print(f"telemetry overhead {pct:.2f}% (budget {max_overhead_pct}%)")
    if pct > max_overhead_pct:
        failures.append(f"telemetry overhead {pct:.2f}% exceeds budget "
                        f"{max_overhead_pct}%")
    # Lifecycle-timeline increment (D13): measured against the instrumented
    # run it rides on, gated on the same budget. Absent in pre-D13 files.
    if "timeline_overhead_pct" in overhead:
        tpct = overhead["timeline_overhead_pct"]
        print(f"timeline overhead {tpct:.2f}% (budget {max_overhead_pct}%)")
        if tpct > max_overhead_pct:
            failures.append(f"timeline overhead {tpct:.2f}% exceeds budget "
                            f"{max_overhead_pct}%")
    # Decision-journal increment (D14): measured against the txnlife run it
    # rides on, gated on the same budget. Absent in pre-D14 files.
    if "journal_overhead_pct" in overhead:
        jpct = overhead["journal_overhead_pct"]
        print(f"journal overhead {jpct:.2f}% (budget {max_overhead_pct}%)")
        if jpct > max_overhead_pct:
            failures.append(f"journal overhead {jpct:.2f}% exceeds budget "
                            f"{max_overhead_pct}%")
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current")
    ap.add_argument("--baseline")
    ap.add_argument("--current-overhead")
    ap.add_argument("--current-skew")
    ap.add_argument("--skew-baseline")
    ap.add_argument("--current-pipeline")
    ap.add_argument("--pipeline-baseline")
    ap.add_argument("--current-cross-shard")
    ap.add_argument("--cross-shard-baseline")
    ap.add_argument("--current-hotpath")
    ap.add_argument("--hotpath-baseline")
    ap.add_argument("--max-speedup-drop-pct", type=float, default=15.0)
    ap.add_argument("--max-overhead-pct", type=float, default=5.0)
    ap.add_argument("--min-skew-speedup", type=float, default=1.3)
    ap.add_argument("--max-uniform-drop-pct", type=float, default=5.0)
    ap.add_argument("--min-overlap-fraction", type=float, default=0.8)
    ap.add_argument("--min-pipeline-speedup", type=float, default=1.25)
    ap.add_argument("--min-cross-goodput", type=float, default=0.8)
    ap.add_argument("--min-hotpath-txns-per-sec", type=float, default=210000.0)
    ap.add_argument("--max-compile-us-per-program", type=float, default=5.0)
    args = ap.parse_args()

    failures = []
    if args.current:
        failures += check_scaling(load(args.current), load(args.baseline),
                                  args.max_speedup_drop_pct)
    if args.current_skew:
        failures += check_skew(
            load(args.current_skew),
            load(args.skew_baseline) if args.skew_baseline else [],
            args.min_skew_speedup, args.max_uniform_drop_pct)
    if args.current_pipeline:
        failures += check_pipeline(
            load(args.current_pipeline),
            load(args.pipeline_baseline) if args.pipeline_baseline else None,
            args.min_overlap_fraction, args.min_pipeline_speedup)
    if args.current_cross_shard:
        failures += check_cross_shard(
            load(args.current_cross_shard),
            load(args.cross_shard_baseline) if args.cross_shard_baseline
            else [],
            args.min_cross_goodput)
    if args.current_hotpath:
        failures += check_hotpath(
            load(args.current_hotpath),
            load(args.hotpath_baseline) if args.hotpath_baseline else None,
            args.min_hotpath_txns_per_sec,
            args.max_compile_us_per_program)
    if args.current_overhead:
        failures += check_overhead(load(args.current_overhead),
                                   args.max_overhead_pct)

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// pardb — command-line front end for the simulator and the paper's
// scenarios.
//
// Modes:
//   pardb sim [flags]          run a closed-loop workload, print the report
//   pardb parallel [flags]     run the workload sharded over N engines on
//                              a thread pool (--shards=N --threads=N
//                              --cross=F --json=FILE)
//   pardb observe [flags]      run the sim workload fully instrumented and
//                              print the metrics as Prometheus text
//   pardb compare [flags]      same workload under every rollback strategy
//   pardb figure1|figure2|figure3a|figure3b|figure3c
//                              replay a paper scenario with commentary
//   pardb dot [flags]          emit the waits-for graph of a contended
//                              moment as Graphviz DOT
//   pardb serve [flags]        replay the sim workload in a loop while the
//                              introspection server runs (--port=N
//                              --duration=SECS, plus the sim flags)
//   pardb journal [flags]      record a run's decision journal to file
//                              (--out=PREFIX plus the sim flags), or
//                              summarize journal files given as positional
//                              arguments
//   pardb diff-runs A B        first-divergence report between two recorded
//                              runs; A and B are journal files or --out
//                              prefixes. Exit 0 identical, 4 diverged.
//
// Common flags (sim/compare/dot):
//   --strategy=mcs|sdg|total         rollback state strategy [mcs]
//   --policy=min-cost|min-cost-ordered|youngest|oldest|requester
//                                    victim policy [min-cost-ordered]
//   --handling=detection|wound-wait|wait-die|timeout   [detection]
//   --txns=N --concurrency=N --entities=N --seed=N
//   --locks=MIN:MAX --shared=F --zipf=T
//   --pattern=scattered|clustered|three-phase
//   --templates=N                    cycle the first N programs as renamed
//                                    templates (compile-cache hit workload;
//                                    0 = every program unique) [0]
//   --no-compile-cache               run the fallback interpreter instead
//                                    of compiled µop streams (bit-identical
//                                    results; differential/ablation runs)
//   --trace                          print the protocol event trace
//   --log-level=debug|info|warning|error|off   (any subcommand; applied
//                                    before anything is constructed)
//
// Decision journal (sim/parallel/journal; DESIGN D14):
//   --journal-out=PREFIX             record journals to PREFIX.shard<k>.jrnl
//                                    (parallel adds PREFIX.coord.jrnl)
//   --no-journal                     disable journaling (overhead runs)
//   --journal-epoch-steps=N          checksum stamp cadence in engine steps
//                                    (rounded up to a power of two) [1024]
//   --flip-victim=N                  test hook: flip the victim choice at
//                                    the Nth deadlock (0 = off)
//   --perturb-epoch=N                test hook: perturb epoch N's state
//                                    digest (-1 = off)
//
// Observability flags (sim/parallel/observe):
//   --metrics-json=FILE              write the metrics registry as JSON
//   --metrics-prom=FILE              write Prometheus text exposition
//   --trace-out=FILE                 write a Chrome trace_event JSON
//                                    (load in Perfetto / about://tracing)
//   --trace-jsonl=FILE               write the raw event stream as JSONL
//   --forensics=PREFIX               write each deadlock's waits-for cycle
//                                    as Graphviz DOT to PREFIX<n>.dot
//
// Live introspection (sim/parallel):
//   --serve=PORT                     start an HTTP server on 127.0.0.1:PORT
//                                    (0 = ephemeral, port printed) serving
//                                    /metrics /healthz /debug/waits-for
//                                    (?stream=sse to subscribe)
//                                    /debug/deadlocks /debug/txn?id=N
//                                    /debug/slowest?k=K while the run is
//                                    in flight
//   --serve-linger=SECS              keep serving this long after the run
//                                    finishes (default 0)
//
// Examples:
//   pardb sim --txns=500 --concurrency=16 --zipf=0.8
//   pardb compare --txns=300 --concurrency=12
//   pardb figure1

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/flags.h"
#include "common/logging.h"
#include "core/engine.h"
#include "core/metrics_export.h"
#include "core/trace.h"
#include "core/trace_export.h"
#include "dist/distributed.h"
#include "obs/forensics.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/serve/http_server.h"
#include "obs/serve/hub.h"
#include "obs/serve/introspection.h"
#include "par/report_json.h"
#include "par/sharded_driver.h"
#include "sim/driver.h"
#include "sim/scenario.h"
#include "txn/program_io.h"

using namespace pardb;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: pardb <sim|parallel|observe|compare|figure1|figure2|"
               "figure3a|figure3b|figure3c|dot|serve|journal|diff-runs> "
               "[--flags]\n"
               "see the header of tools/pardb_cli.cc for the flag list\n");
  return 2;
}

// --serve / --serve-linger, shared by sim and parallel.
struct ServeConfig {
  bool enabled = false;
  int port = 0;          // 0 = ephemeral
  double linger = 0.0;   // seconds to keep serving after the run
};

Result<ServeConfig> GetServeConfig(const Flags& flags) {
  ServeConfig c;
  if (!flags.Has("serve")) return c;
  PARDB_ASSIGN_OR_RETURN(auto port, flags.GetInt("serve", 0));
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--serve expects a port in [0,65535]");
  }
  c.enabled = true;
  c.port = static_cast<int>(port);
  PARDB_ASSIGN_OR_RETURN(c.linger, flags.GetDouble("serve-linger", 0.0));
  return c;
}

// /healthz run metadata: build id, seed, shard count, scheduler, mode.
obs::RunInfo MakeRunInfo(std::uint64_t seed, std::uint32_t shards,
                         const std::string& scheduler,
                         const std::string& mode) {
  obs::RunInfo info;
  info.build_id = std::string("pardb ") + __DATE__;
  info.seed = seed;
  info.shards = shards;
  info.scheduler = scheduler;
  info.mode = mode;
  return info;
}

// Builds the introspection server over `hub` and starts it. Prints the
// bound endpoint so scripts scraping an ephemeral port can find it.
Result<std::unique_ptr<obs::HttpServer>> StartIntrospectionServer(
    obs::LiveHub* hub, int port) {
  auto server = std::make_unique<obs::HttpServer>();
  obs::InstallIntrospectionRoutes(server.get(), hub);
  PARDB_RETURN_IF_ERROR(server->Start(static_cast<std::uint16_t>(port)));
  std::printf("serving http://127.0.0.1:%u  "
              "(/metrics /healthz /debug/waits-for /debug/deadlocks "
              "/debug/txn /debug/slowest /debug/journal)\n",
              server->port());
  std::fflush(stdout);
  return server;
}

void LingerThenStop(obs::HttpServer* server, double seconds) {
  if (server == nullptr) return;
  if (seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<std::int64_t>(seconds * 1000)));
  }
  server->Stop();
  std::printf("introspection server stopped after %llu request(s)\n",
              (unsigned long long)server->requests_served());
}

// Destinations requested by the shared observability flags. Reading them
// even in subcommands that ignore them keeps UnusedFlags() quiet and the
// interface uniform.
struct ObsOutputs {
  std::string metrics_json;
  std::string metrics_prom;
  std::string trace_out;    // Chrome trace_event JSON
  std::string trace_jsonl;  // raw event stream
  std::string forensics;    // DOT file prefix

  bool WantMetrics() const {
    return !metrics_json.empty() || !metrics_prom.empty();
  }
  bool WantTrace() const {
    return !trace_out.empty() || !trace_jsonl.empty();
  }
  bool WantForensics() const { return !forensics.empty(); }
};

ObsOutputs GetObsOutputs(const Flags& flags) {
  ObsOutputs o;
  o.metrics_json = flags.GetString("metrics-json", "");
  o.metrics_prom = flags.GetString("metrics-prom", "");
  o.trace_out = flags.GetString("trace-out", "");
  o.trace_jsonl = flags.GetString("trace-jsonl", "");
  o.forensics = flags.GetString("forensics", "");
  return o;
}

bool WriteFileOrComplain(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << body;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// The --metrics-json document: the merged registry plus the per-shard view
// (identical for single-engine commands). tools/metrics_schema.json pins
// this shape for the CI smoke job.
std::string MetricsJsonDoc(const std::string& command,
                           const obs::RegistrySnapshot& per_shard,
                           const obs::RegistrySnapshot& merged) {
  std::ostringstream os;
  os << "{\"command\":\"" << command << "\",\n\"merged\":" << merged.ToJson()
     << ",\n\"per_shard\":" << per_shard.ToJson() << "\n}\n";
  return os.str();
}

// Writes every requested metrics/forensics artifact; returns 0 or 1.
int WriteObsArtifacts(const ObsOutputs& outs, const std::string& command,
                      const obs::RegistrySnapshot& per_shard,
                      const obs::RegistrySnapshot& merged,
                      const std::vector<obs::DeadlockDump>& dumps) {
  int rc = 0;
  if (!outs.metrics_json.empty() &&
      !WriteFileOrComplain(outs.metrics_json,
                           MetricsJsonDoc(command, per_shard, merged))) {
    rc = 1;
  }
  if (!outs.metrics_prom.empty() &&
      !WriteFileOrComplain(outs.metrics_prom, merged.ToPrometheus())) {
    rc = 1;
  }
  if (outs.WantForensics()) {
    std::size_t i = 0;
    for (const obs::DeadlockDump& d : dumps) {
      if (!WriteFileOrComplain(outs.forensics + std::to_string(i) + ".dot",
                               obs::DeadlockDumpToDot(d))) {
        rc = 1;
        break;
      }
      ++i;
    }
    std::printf("forensics: %zu deadlock dump(s)\n", dumps.size());
  }
  return rc;
}

int WriteTraceArtifacts(const ObsOutputs& outs,
                        const std::vector<core::ShardTrace>& shards,
                        const std::vector<core::GlobalSlice>& flows = {}) {
  int rc = 0;
  if (!outs.trace_out.empty()) {
    if (core::WriteChromeTraceFile(outs.trace_out, shards, flows)) {
      std::printf("wrote %s\n", outs.trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", outs.trace_out.c_str());
      rc = 1;
    }
  }
  if (!outs.trace_jsonl.empty()) {
    std::ostringstream body;
    for (const core::ShardTrace& s : shards) {
      for (const core::TraceEvent& e : s.events) {
        body << core::TraceEventToJsonLine(e) << "\n";
      }
    }
    if (!WriteFileOrComplain(outs.trace_jsonl, body.str())) rc = 1;
  }
  return rc;
}

Result<rollback::StrategyKind> ParseStrategy(const std::string& s) {
  if (s == "mcs") return rollback::StrategyKind::kMcs;
  if (s == "sdg") return rollback::StrategyKind::kSdg;
  if (s == "total" || s == "total-restart") {
    return rollback::StrategyKind::kTotalRestart;
  }
  return Status::InvalidArgument("unknown --strategy " + s);
}

Result<core::VictimPolicyKind> ParsePolicy(const std::string& s) {
  if (s == "min-cost") return core::VictimPolicyKind::kMinCost;
  if (s == "min-cost-ordered") return core::VictimPolicyKind::kMinCostOrdered;
  if (s == "youngest") return core::VictimPolicyKind::kYoungest;
  if (s == "oldest") return core::VictimPolicyKind::kOldest;
  if (s == "requester") return core::VictimPolicyKind::kRequester;
  return Status::InvalidArgument("unknown --policy " + s);
}

Result<core::DeadlockHandling> ParseHandling(const std::string& s) {
  if (s == "detection") return core::DeadlockHandling::kDetection;
  if (s == "wound-wait") return core::DeadlockHandling::kWoundWait;
  if (s == "wait-die") return core::DeadlockHandling::kWaitDie;
  if (s == "timeout") return core::DeadlockHandling::kTimeout;
  return Status::InvalidArgument("unknown --handling " + s);
}

Result<sim::WritePattern> ParsePattern(const std::string& s) {
  if (s == "scattered") return sim::WritePattern::kScattered;
  if (s == "clustered") return sim::WritePattern::kClustered;
  if (s == "three-phase") return sim::WritePattern::kThreePhase;
  return Status::InvalidArgument("unknown --pattern " + s);
}

Result<sim::SimOptions> BuildSimOptions(const Flags& flags) {
  sim::SimOptions opt;
  PARDB_ASSIGN_OR_RETURN(auto strategy,
                         ParseStrategy(flags.GetString("strategy", "mcs")));
  opt.engine.strategy = strategy;
  PARDB_ASSIGN_OR_RETURN(
      auto policy, ParsePolicy(flags.GetString("policy", "min-cost-ordered")));
  opt.engine.victim_policy = policy;
  PARDB_ASSIGN_OR_RETURN(
      auto handling, ParseHandling(flags.GetString("handling", "detection")));
  opt.engine.handling = handling;
  opt.engine.scheduler = core::SchedulerKind::kRandom;

  PARDB_ASSIGN_OR_RETURN(auto txns, flags.GetInt("txns", 200));
  opt.total_txns = static_cast<std::uint64_t>(txns);
  PARDB_ASSIGN_OR_RETURN(auto conc, flags.GetInt("concurrency", 8));
  opt.concurrency = static_cast<std::uint32_t>(conc);
  PARDB_ASSIGN_OR_RETURN(auto entities, flags.GetInt("entities", 32));
  opt.workload.num_entities = static_cast<std::uint64_t>(entities);
  PARDB_ASSIGN_OR_RETURN(auto seed, flags.GetInt("seed", 1));
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.engine.seed = opt.seed;
  PARDB_ASSIGN_OR_RETURN(auto zipf, flags.GetDouble("zipf", 0.0));
  opt.workload.zipf_theta = zipf;
  PARDB_ASSIGN_OR_RETURN(auto shared, flags.GetDouble("shared", 0.0));
  opt.workload.shared_fraction = shared;
  PARDB_ASSIGN_OR_RETURN(
      auto pattern, ParsePattern(flags.GetString("pattern", "scattered")));
  opt.workload.pattern = pattern;
  // Parameterized-statement mode: cycle the first N generated programs as
  // templates (fresh names, identical ops), so the compile cache hits on
  // every admission after the first cycle.
  PARDB_ASSIGN_OR_RETURN(auto templates, flags.GetInt("templates", 0));
  if (templates < 0) {
    return Status::InvalidArgument("--templates must be >= 0");
  }
  opt.workload.num_templates = static_cast<std::uint32_t>(templates);
  // Differential escape hatch: run the fallback interpreter instead of the
  // compiled µop path (results are bit-identical either way; D16).
  opt.engine.compile_programs = !flags.GetBool("no-compile-cache", false);

  const std::string locks = flags.GetString("locks", "3:6");
  auto colon = locks.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("--locks expects MIN:MAX");
  }
  opt.workload.min_locks =
      static_cast<std::uint32_t>(std::atoi(locks.substr(0, colon).c_str()));
  opt.workload.max_locks =
      static_cast<std::uint32_t>(std::atoi(locks.substr(colon + 1).c_str()));

  // Decision journal (DESIGN D14) and its test hooks.
  opt.journal = !flags.GetBool("no-journal", false);
  opt.journal_out = flags.GetString("journal-out", "");
  PARDB_ASSIGN_OR_RETURN(auto jsteps, flags.GetInt("journal-epoch-steps", 1024));
  if (jsteps < 0) {
    return Status::InvalidArgument("--journal-epoch-steps must be >= 0");
  }
  opt.engine.journal_epoch_steps = static_cast<std::uint64_t>(jsteps);
  PARDB_ASSIGN_OR_RETURN(auto flip, flags.GetInt("flip-victim", 0));
  if (flip < 0) return Status::InvalidArgument("--flip-victim must be >= 0");
  opt.engine.debug_flip_victim_deadlock = static_cast<std::uint64_t>(flip);
  PARDB_ASSIGN_OR_RETURN(auto perturb, flags.GetInt("perturb-epoch", -1));
  opt.journal_perturb_epoch =
      perturb < 0 ? ~0ULL : static_cast<std::uint64_t>(perturb);
  return opt;
}

void PrintReport(const sim::SimReport& r) {
  std::printf("%s\n", r.ToString().c_str());
  std::printf("  rollback mix: %llu partial / %llu total; preemptions=%llu "
              "wounds=%llu deaths=%llu timeouts=%llu\n",
              (unsigned long long)r.metrics.partial_rollbacks,
              (unsigned long long)r.metrics.total_rollbacks,
              (unsigned long long)r.metrics.preemptions,
              (unsigned long long)r.metrics.wounds,
              (unsigned long long)r.metrics.deaths,
              (unsigned long long)r.metrics.timeouts);
  std::printf("  space peaks: %zu entity copies, %zu var copies (one txn)\n",
              r.metrics.max_entity_copies, r.metrics.max_var_copies);
  std::printf("  generation: peak_materialized_programs=%llu\n",
              (unsigned long long)r.peak_materialized_programs);
}

int RunSim(const Flags& flags) {
  auto opt = BuildSimOptions(flags);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    return 2;
  }
  const ObsOutputs outs = GetObsOutputs(flags);
  auto serve = GetServeConfig(flags);
  if (!serve.ok()) {
    std::fprintf(stderr, "%s\n", serve.status().ToString().c_str());
    return 2;
  }
  obs::MetricsRegistry registry;
  core::VectorTrace trace;
  obs::CollectingDeadlockSink forensics(/*max_dumps=*/64);
  obs::LiveHub hub;
  std::unique_ptr<obs::HttpServer> server;
  obs::MetricsRegistry* reg = &registry;
  if (serve->enabled) {
    // The live registry must outlive the run (the server keeps answering
    // during --serve-linger), so the hub owns it.
    reg = hub.AddOwnedRegistry(std::make_unique<obs::MetricsRegistry>());
    opt->hub = &hub;
    hub.SetRunInfo(MakeRunInfo(opt->seed, 1, "sim", "sim"));
    auto started = StartIntrospectionServer(&hub, serve->port);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
      return 1;
    }
    server = std::move(started).value();
  }
  if (outs.WantMetrics() || serve->enabled) opt->metrics = reg;
  if (outs.WantTrace()) opt->trace = &trace;
  if (outs.WantForensics()) opt->forensics = &forensics;

  auto report = sim::RunSimulation(opt.value());
  if (!report.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  PrintReport(report.value());
  LingerThenStop(server.get(), serve->linger);
  int rc = report->completed ? 0 : 3;
  if (outs.WantMetrics()) {
    const obs::RegistrySnapshot snap = reg->Snapshot();
    if (WriteObsArtifacts(outs, "sim", snap, snap, forensics.dumps()) != 0) {
      rc = 1;
    }
  } else if (outs.WantForensics()) {
    obs::RegistrySnapshot empty;
    if (WriteObsArtifacts(outs, "sim", empty, empty, forensics.dumps()) != 0) {
      rc = 1;
    }
  }
  if (outs.WantTrace()) {
    std::vector<core::ShardTrace> shards(1);
    shards[0].pid = 0;
    shards[0].name = "pardb sim";
    shards[0].events = trace.events();
    if (WriteTraceArtifacts(outs, shards) != 0) rc = 1;
  }
  return rc;
}

// `pardb observe` — the sim workload with every probe attached; prints the
// merged metrics as Prometheus text exposition and honors the shared
// observability flags for file artifacts.
int RunObserve(const Flags& flags) {
  auto opt = BuildSimOptions(flags);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    return 2;
  }
  const ObsOutputs outs = GetObsOutputs(flags);
  obs::MetricsRegistry registry;
  core::VectorTrace trace;
  obs::CollectingDeadlockSink forensics(/*max_dumps=*/64);
  opt->metrics = &registry;
  opt->trace = &trace;
  opt->forensics = &forensics;

  auto report = sim::RunSimulation(opt.value());
  if (!report.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const obs::RegistrySnapshot snap = registry.Snapshot();
  std::printf("%s", snap.ToPrometheus().c_str());
  std::fprintf(stderr, "# %s\n", report->ToString().c_str());
  int rc = report->completed ? 0 : 3;
  if (WriteObsArtifacts(outs, "observe", snap, snap, forensics.dumps()) != 0) {
    rc = 1;
  }
  if (outs.WantTrace()) {
    std::vector<core::ShardTrace> shards(1);
    shards[0].pid = 0;
    shards[0].name = "pardb observe";
    shards[0].events = trace.events();
    if (WriteTraceArtifacts(outs, shards) != 0) rc = 1;
  }
  return rc;
}

// `pardb parallel` — the sim workload sharded over N engines on a
// work-stealing pool (src/par). Extra flags: --shards, --threads (0 = one
// per shard; oversharding --shards > --threads load-balances via
// stealing), --cross (fraction of transactions drawn across shard
// boundaries), --scheduler=timeslice|rtc, --quantum-steps,
// --min-quantum-steps, --no-adaptive-quantum, --hot-routing (route local
// transactions to Zipf-hot shards), --pipeline / --no-pipeline (streaming
// admission, on by default), --queue-capacity (per-shard admission queue
// bound), --xshard=locks|replica (true shard-spanning transactions with
// distributed partial rollback, or the legacy coordinator-replica
// shortcut), --json=FILE (write the machine-readable report).
int RunParallel(const Flags& flags) {
  auto sim_opt = BuildSimOptions(flags);
  if (!sim_opt.ok()) {
    std::fprintf(stderr, "%s\n", sim_opt.status().ToString().c_str());
    return 2;
  }
  par::ShardedOptions opt;
  opt.engine = sim_opt->engine;
  opt.workload = sim_opt->workload;
  opt.concurrency = sim_opt->concurrency;
  opt.total_txns = sim_opt->total_txns;
  opt.seed = sim_opt->seed;
  opt.journal = sim_opt->journal;
  opt.journal_out = sim_opt->journal_out;
  opt.journal_perturb_epoch = sim_opt->journal_perturb_epoch;
  auto shards = flags.GetInt("shards", 4);
  auto threads = flags.GetInt("threads", 0);
  auto cross = flags.GetDouble("cross", 0.05);
  auto coord = flags.GetInt("coordinator", 0);
  if (!shards.ok() || !threads.ok() || !cross.ok() || !coord.ok()) return 2;
  opt.coordinator_shard = static_cast<std::uint32_t>(coord.value());
  opt.num_shards = static_cast<std::uint32_t>(shards.value());
  opt.num_threads = static_cast<std::size_t>(threads.value());
  opt.cross_shard_fraction = cross.value();
  const std::string sched = flags.GetString("scheduler", "timeslice");
  if (sched == "rtc") {
    opt.scheduler = par::ShardScheduler::kRunToCompletion;
  } else if (sched == "timeslice") {
    opt.scheduler = par::ShardScheduler::kTimeSlice;
  } else {
    std::fprintf(stderr, "unknown --scheduler=%s (timeslice|rtc)\n",
                 sched.c_str());
    return 2;
  }
  auto quantum = flags.GetInt("quantum-steps", 256);
  auto min_quantum = flags.GetInt("min-quantum-steps", 32);
  if (!quantum.ok() || !min_quantum.ok()) return 2;
  opt.quantum_steps = static_cast<std::uint64_t>(quantum.value());
  opt.min_quantum_steps = static_cast<std::uint64_t>(min_quantum.value());
  opt.adaptive_quantum = !flags.GetBool("no-adaptive-quantum", false);
  opt.hot_shard_routing = flags.GetBool("hot-routing", false);
  opt.pipeline =
      flags.GetBool("pipeline", true) && !flags.GetBool("no-pipeline", false);
  auto qcap = flags.GetInt("queue-capacity", 32);
  if (!qcap.ok()) return 2;
  opt.admission_queue_capacity = static_cast<std::size_t>(qcap.value());
  const std::string xshard = flags.GetString("xshard", "locks");
  if (xshard == "locks") {
    opt.xshard = par::XShardMode::kLocks;
  } else if (xshard == "replica") {
    opt.xshard = par::XShardMode::kReplica;
  } else {
    std::fprintf(stderr, "unknown --xshard=%s (locks|replica)\n",
                 xshard.c_str());
    return 2;
  }
  const ObsOutputs outs = GetObsOutputs(flags);
  auto serve = GetServeConfig(flags);
  if (!serve.ok()) {
    std::fprintf(stderr, "%s\n", serve.status().ToString().c_str());
    return 2;
  }
  opt.instrument = outs.WantMetrics();
  opt.collect_traces = outs.WantTrace();
  opt.collect_forensics = outs.WantForensics();
  obs::LiveHub hub;
  std::unique_ptr<obs::HttpServer> server;
  if (serve->enabled) {
    opt.hub = &hub;
    opt.instrument = true;  // live /metrics needs the per-shard registries
    hub.SetRunInfo(MakeRunInfo(opt.seed, opt.num_shards, sched, "parallel"));
    auto started = StartIntrospectionServer(&hub, serve->port);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
      return 1;
    }
    server = std::move(started).value();
  }

  auto report = par::RunSharded(opt);
  if (!report.ok()) {
    std::fprintf(stderr, "sharded run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());
  std::printf("scheduler: workers=%zu quanta=%llu steals=%llu "
              "util(mean=%.2f min=%.2f) virtual_makespan=%llu\n",
              report->scheduler.num_workers,
              (unsigned long long)report->scheduler.quanta,
              (unsigned long long)report->scheduler.steals,
              report->scheduler.mean_worker_utilization,
              report->scheduler.min_worker_utilization,
              (unsigned long long)report->scheduler.virtual_makespan_steps);
  std::printf("admission: pipelined=%s queue_capacity=%zu overlap=%.3f "
              "peak_materialized=%llu blocked_pushes=%llu "
              "generate_s=%.3f execute_s=%.3f\n",
              report->admission.pipelined ? "yes" : "no",
              report->admission.queue_capacity,
              report->admission.overlap_fraction,
              (unsigned long long)report->admission.peak_materialized_programs,
              (unsigned long long)report->admission.producer_blocked_pushes,
              report->admission.generate_seconds,
              report->admission.execute_seconds);
  if (report->xshard_locks) {
    const par::xshard::XShardStats& x = report->xshard;
    std::printf("xshard: mode=locks epochs=%llu globals=%llu subs=%llu "
                "merges=%llu global_cycles=%llu distributed_rollbacks=%llu "
                "omega_exclusions=%llu prepares=%llu resolves=%llu "
                "messages=%llu global_serializable=%s\n",
                (unsigned long long)x.epochs,
                (unsigned long long)x.global_txns,
                (unsigned long long)x.sub_txns,
                (unsigned long long)x.merges,
                (unsigned long long)x.global_cycles,
                (unsigned long long)x.distributed_rollbacks,
                (unsigned long long)x.omega_exclusions,
                (unsigned long long)x.prepares,
                (unsigned long long)x.resolves,
                (unsigned long long)x.messages,
                report->global_serializable ? "yes" : "NO");
  }
  LingerThenStop(server.get(), serve->linger);
  for (const par::ShardResult& s : report->shards) {
    std::printf("  shard %u%s: assigned=%llu committed=%llu deadlocks=%llu "
                "rollbacks=%llu wasted=%llu serializable=%s\n",
                s.shard, s.shard == opt.coordinator_shard ? " (coord)" : "",
                (unsigned long long)s.assigned,
                (unsigned long long)s.committed,
                (unsigned long long)s.metrics.deadlocks,
                (unsigned long long)s.metrics.rollbacks,
                (unsigned long long)s.metrics.wasted_ops,
                s.serializable ? "yes" : "NO");
  }
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << par::ShardedReportToJson(report.value()) << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  int rc = report->completed ? 0 : 3;
  if (opt.instrument || opt.collect_forensics) {
    if (WriteObsArtifacts(outs, "parallel", report->metrics,
                          report->merged_metrics, report->forensics) != 0) {
      rc = 1;
    }
  }
  if (opt.collect_traces) {
    std::vector<core::ShardTrace> traces;
    for (std::size_t s = 0; s < report->shard_traces.size(); ++s) {
      core::ShardTrace t;
      t.pid = s;
      t.name = "shard " + std::to_string(s);
      t.events = report->shard_traces[s];
      traces.push_back(std::move(t));
    }
    if (WriteTraceArtifacts(outs, traces, report->flow_slices) != 0) rc = 1;
  }
  return rc;
}

int RunCompare(const Flags& flags) {
  for (auto strategy :
       {rollback::StrategyKind::kTotalRestart, rollback::StrategyKind::kSdg,
        rollback::StrategyKind::kMcs}) {
    auto opt = BuildSimOptions(flags);
    if (!opt.ok()) {
      std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
      return 2;
    }
    opt.value().engine.strategy = strategy;
    auto report = sim::RunSimulation(opt.value());
    if (!report.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s ", std::string(rollback::StrategyKindName(strategy))
                              .c_str());
    PrintReport(report.value());
  }
  return 0;
}

int RunFigure(const std::string& mode) {
  core::EngineOptions opt;
  opt.victim_policy = core::VictimPolicyKind::kMinCost;
  if (mode == "figure1") {
    auto fig = sim::BuildFigure1(opt);
    if (!fig.ok()) return 1;
    (void)fig->TriggerDeadlock();
    const auto& ev = fig->runner->engine().deadlock_events().at(0);
    std::printf("Figure 1: deadlock of %zu transactions; costs:",
                ev.cycle_txns.size());
    for (const auto& c : ev.candidates) {
      std::printf(" T%llu=%llu", (unsigned long long)c.txn.value() + 1,
                  (unsigned long long)c.cost);
    }
    std::printf("; victim T%llu (paper: T2, costs 4/6/5)\n",
                (unsigned long long)ev.victims[0].value() + 1);
    return 0;
  }
  if (mode == "figure2") {
    auto out = sim::RunFigure2MutualPreemption(opt, 5);
    if (!out.ok()) return 1;
    std::printf("Figure 2: min-cost sustained the mutual-preemption loop "
                "for %d rounds (it never ends); victims alternate T2/T3\n",
                out->recurrences);
    return 0;
  }
  if (mode == "figure3a") {
    auto fig = sim::BuildFigure3a(opt);
    if (!fig.ok()) return 1;
    std::printf("Figure 3(a): acyclic=%s forest=%s\n",
                fig->runner->engine().waits_for().IsAcyclic() ? "yes" : "no",
                fig->runner->engine().waits_for().IsForest() ? "yes" : "no");
    return 0;
  }
  if (mode == "figure3b" || mode == "figure3c") {
    auto Report = [](auto fig) {
      if (!fig.ok()) return 1;
      (void)fig->TriggerDeadlock();
      const auto& ev = fig->runner->engine().deadlock_events().at(0);
      std::printf("%zu cycles; victims:", ev.num_cycles);
      for (TxnId v : ev.victims) {
        std::printf(" T%llu", (unsigned long long)v.value() + 1);
      }
      std::printf(" (cost %llu)\n", (unsigned long long)ev.total_cost);
      return 0;
    };
    return mode == "figure3b" ? Report(sim::BuildFigure3b(opt))
                              : Report(sim::BuildFigure3c(opt));
  }
  return Usage();
}

// `pardb run prog1.txt prog2.txt ...` — parse program files (see
// txn/program_io.h for the syntax) and run them concurrently.
int RunPrograms(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "run: no program files given\n");
    return 2;
  }
  std::vector<txn::Program> programs;
  std::uint64_t max_entity = 0;
  for (const std::string& path : flags.positional()) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto p = txn::ParseProgram(text.str());
    if (!p.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   p.status().ToString().c_str());
      return 2;
    }
    for (const txn::Op& op : p.value().ops()) {
      if (op.entity.valid()) max_entity = std::max(max_entity,
                                                   op.entity.value());
    }
    programs.push_back(std::move(p).value());
  }

  storage::EntityStore store;
  auto init = flags.GetInt("initial", 100);
  if (!init.ok()) return 2;
  store.CreateMany(max_entity + 1, init.value());

  core::EngineOptions eopt;
  {
    auto strategy = ParseStrategy(flags.GetString("strategy", "mcs"));
    auto policy = ParsePolicy(flags.GetString("policy", "min-cost-ordered"));
    auto handling = ParseHandling(flags.GetString("handling", "detection"));
    if (!strategy.ok() || !policy.ok() || !handling.ok()) return 2;
    eopt.strategy = strategy.value();
    eopt.victim_policy = policy.value();
    eopt.handling = handling.value();
  }
  analysis::HistoryRecorder recorder;
  core::Engine engine(&store, eopt, &recorder);
  core::RingTrace trace(4096);
  const bool want_trace = flags.GetBool("trace");
  if (want_trace) engine.set_trace(&trace);

  for (auto& p : programs) {
    auto t = engine.Spawn(std::move(p));
    if (!t.ok()) {
      std::fprintf(stderr, "spawn failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
  }
  Status s = engine.RunToCompletion(10'000'000);
  if (!s.ok()) {
    std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (want_trace) std::printf("%s", trace.ToString().c_str());
  const auto& m = engine.metrics();
  std::printf("committed=%llu deadlocks=%llu rollbacks=%llu "
              "(partial=%llu) wasted_ops=%llu serializable=%s\n",
              (unsigned long long)m.commits,
              (unsigned long long)m.deadlocks,
              (unsigned long long)m.rollbacks,
              (unsigned long long)m.partial_rollbacks,
              (unsigned long long)m.wasted_ops,
              recorder.IsConflictSerializable() ? "yes" : "NO");
  for (const auto& [e, v] : store.Snapshot()) {
    std::printf("E%llu = %lld\n", (unsigned long long)e.value(),
                (long long)v);
  }
  return 0;
}

int RunDot(const Flags& flags) {
  // Runs a short contended workload and prints the waits-for graph at the
  // moment of the first deadlock.
  auto opt = BuildSimOptions(flags);
  if (!opt.ok()) return 2;
  storage::EntityStore store;
  store.CreateMany(opt.value().workload.num_entities, 100);
  core::Engine engine(&store, opt.value().engine);
  sim::WorkloadGenerator gen(opt.value().workload, opt.value().seed);
  std::uint64_t spawned = 0;
  for (std::uint64_t i = 0; i < 2'000'000; ++i) {
    while (spawned - engine.metrics().commits < opt.value().concurrency) {
      auto p = gen.Next();
      if (!p.ok()) return 1;
      if (!engine.Spawn(std::move(p).value()).ok()) return 1;
      ++spawned;
    }
    if (engine.metrics().lock_waits > 0 &&
        engine.waits_for().EdgeCount() >= 3) {
      std::cout << engine.waits_for().ToDot();
      return 0;
    }
    auto s = engine.StepAny();
    if (!s.ok() || !s.value().has_value()) break;
  }
  std::cout << engine.waits_for().ToDot();
  return 0;
}

// Resolves a `pardb diff-runs` argument to journal files: a literal file
// path, or a --journal-out prefix (PREFIX.shard<k>.jrnl [+ PREFIX.coord.jrnl]).
std::vector<std::string> ResolveJournalArg(const std::string& arg) {
  std::vector<std::string> paths;
  if (std::ifstream(arg).good()) {
    paths.push_back(arg);
    return paths;
  }
  for (std::uint32_t s = 0; s < 1024; ++s) {
    std::string p = arg + ".shard" + std::to_string(s) + ".jrnl";
    if (!std::ifstream(p).good()) break;
    paths.push_back(std::move(p));
  }
  if (std::ifstream(arg + ".coord.jrnl").good()) {
    paths.push_back(arg + ".coord.jrnl");
  }
  return paths;
}

// `pardb journal` — record a run's decision journal (--out=PREFIX plus the
// sim flags; writes PREFIX.shard0.jrnl), or summarize journal files given
// as positional arguments. Sharded recordings come from
// `pardb parallel --journal-out=PREFIX`.
int RunJournal(const Flags& flags) {
  if (!flags.positional().empty()) {
    int rc = 0;
    for (const std::string& path : flags.positional()) {
      auto data = obs::ReadJournalFile(path);
      if (!data.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     data.status().ToString().c_str());
        rc = 1;
        continue;
      }
      std::printf("%s", obs::SummarizeJournal(data.value(), path).c_str());
    }
    return rc;
  }
  const std::string prefix = flags.GetString("out", "");
  if (prefix.empty()) {
    std::fprintf(stderr,
                 "journal: need --out=PREFIX to record, or journal files to "
                 "summarize\n");
    return 2;
  }
  auto opt = BuildSimOptions(flags);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    return 2;
  }
  opt->journal = true;
  opt->journal_out = prefix + ".shard0.jrnl";
  auto report = sim::RunSimulation(opt.value());
  if (!report.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());
  std::printf("wrote %s (%llu records, %llu epochs)\n",
              opt->journal_out.c_str(),
              (unsigned long long)report->journal_records,
              (unsigned long long)report->journal_chain.size());
  return report->completed ? 0 : 3;
}

// `pardb diff-runs A B` — hierarchical first-divergence diagnosis between
// two recorded runs: checksum bisection to the first divergent epoch, then
// a record-level diff pinning the exact first divergent decision. Exit 0
// when every journal pair is identical, 4 on divergence, 2 on usage/IO
// errors.
int RunDiffRuns(const Flags& flags) {
  if (flags.positional().size() != 2) {
    std::fprintf(stderr, "usage: pardb diff-runs <A> <B>  (journal files or "
                 "--journal-out prefixes)\n");
    return 2;
  }
  const std::string& arg_a = flags.positional()[0];
  const std::string& arg_b = flags.positional()[1];
  const std::vector<std::string> paths_a = ResolveJournalArg(arg_a);
  const std::vector<std::string> paths_b = ResolveJournalArg(arg_b);
  if (paths_a.empty() || paths_b.empty()) {
    std::fprintf(stderr, "diff-runs: no journal files found for '%s'\n",
                 paths_a.empty() ? arg_a.c_str() : arg_b.c_str());
    return 2;
  }
  if (paths_a.size() != paths_b.size()) {
    std::fprintf(stderr,
                 "diff-runs: %s has %zu journal(s), %s has %zu — the runs "
                 "were recorded with different shard counts\n",
                 arg_a.c_str(), paths_a.size(), arg_b.c_str(), paths_b.size());
    return 4;
  }
  bool any_diverged = false;
  for (std::size_t i = 0; i < paths_a.size(); ++i) {
    auto a = obs::ReadJournalFile(paths_a[i]);
    auto b = obs::ReadJournalFile(paths_b[i]);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "diff-runs: %s\n",
                   (!a.ok() ? a.status() : b.status()).ToString().c_str());
      return 2;
    }
    if (a->shard != b->shard) {
      std::fprintf(stderr,
                   "diff-runs: shard mismatch (%u vs %u) between %s and %s\n",
                   a->shard, b->shard, paths_a[i].c_str(), paths_b[i].c_str());
      return 2;
    }
    const obs::DivergenceReport d = obs::DiffJournals(a.value(), b.value());
    if (!d.diverged) continue;
    if (!any_diverged) {
      std::printf("%s%s", obs::SummarizeJournal(a.value(), arg_a).c_str(),
                  obs::SummarizeJournal(b.value(), arg_b).c_str());
    }
    any_diverged = true;
    std::printf("%s", obs::RenderDivergence(d, a->shard, arg_a, arg_b).c_str());
  }
  if (!any_diverged) {
    std::printf("runs identical: %zu journal(s) compared, all checksum "
                "chains and records match\n",
                paths_a.size());
    return 0;
  }
  return 4;
}

// `pardb serve` — replay mode: loops the sim workload (seed advancing each
// iteration) with the introspection server up the whole time, so dashboards
// and curl have a moving target to look at. Flags: --port=N (default 8080,
// 0 = ephemeral), --duration=SECS of serving time (default 10), plus the
// usual sim flags for the replayed workload.
int RunServe(const Flags& flags) {
  auto opt = BuildSimOptions(flags);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    return 2;
  }
  auto port = flags.GetInt("port", 8080);
  auto duration = flags.GetDouble("duration", 10.0);
  if (!port.ok() || !duration.ok()) return 2;

  obs::LiveHub hub;
  obs::MetricsRegistry* reg =
      hub.AddOwnedRegistry(std::make_unique<obs::MetricsRegistry>());
  opt->metrics = reg;
  opt->hub = &hub;
  hub.SetRunInfo(MakeRunInfo(opt->seed, 1, "sim", "serve"));
  auto started = StartIntrospectionServer(&hub, static_cast<int>(port.value()));
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<obs::HttpServer> server = std::move(started).value();

  const auto t_end = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(
                         static_cast<std::int64_t>(duration.value() * 1000));
  std::uint64_t iterations = 0;
  std::uint64_t committed = 0;
  do {
    auto report = sim::RunSimulation(opt.value());
    if (!report.ok()) {
      std::fprintf(stderr, "replay iteration %llu failed: %s\n",
                   (unsigned long long)iterations,
                   report.status().ToString().c_str());
      server->Stop();
      return 1;
    }
    committed += report->committed;
    ++iterations;
    opt->seed = opt->seed * 6364136223846793005ULL + 1442695040888963407ULL;
    opt->engine.seed = opt->seed;
  } while (std::chrono::steady_clock::now() < t_end);
  std::printf("replayed %llu iteration(s), %llu commits\n",
              (unsigned long long)iterations, (unsigned long long)committed);
  server->Stop();
  std::printf("introspection server stopped after %llu request(s)\n",
              (unsigned long long)server->requests_served());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  auto flags = Flags::Parse(argc - 2, argv + 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  // Apply the log threshold before any subcommand constructs anything, so
  // kDebug traces from setup code (engine construction, workload
  // generation) are not dropped.
  if (flags->Has("log-level")) {
    LogLevel level = GetLogLevel();
    const std::string name = flags->GetString("log-level");
    if (!ParseLogLevel(name, &level)) {
      std::fprintf(stderr, "unknown --log-level %s\n", name.c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  int rc;
  if (mode == "sim") {
    rc = RunSim(flags.value());
  } else if (mode == "parallel") {
    rc = RunParallel(flags.value());
  } else if (mode == "observe") {
    rc = RunObserve(flags.value());
  } else if (mode == "compare") {
    rc = RunCompare(flags.value());
  } else if (mode == "run") {
    rc = RunPrograms(flags.value());
  } else if (mode == "dot") {
    rc = RunDot(flags.value());
  } else if (mode == "serve") {
    rc = RunServe(flags.value());
  } else if (mode == "journal") {
    rc = RunJournal(flags.value());
  } else if (mode == "diff-runs") {
    rc = RunDiffRuns(flags.value());
  } else {
    rc = RunFigure(mode);
  }
  for (const std::string& unused : flags.value().UnusedFlags()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }
  return rc;
}
